//! The physical schema: atomic entities, fragments, clustering and index
//! descriptors.
//!
//! Following §3 of the paper, the physical model uses *direct storage*
//! (oids of sub-objects stored inside owners), allows *clustering*
//! sub-object instances close to the owner, allows *decomposing*
//! extensions into horizontal or vertical fragments, and provides *path
//! indices* spanning whole attribute hierarchies. An *atomic entity* is a
//! non-decomposed extension or one fragment of a decomposed extension.

use std::collections::HashMap;
use std::fmt;

use oorq_schema::{AttrId, ClassId, RelationId};

/// Identifier of an atomic entity of the physical schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Identifier of an index descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndexId(pub u32);

/// What conceptual extension an entity implements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntitySource {
    /// The (whole) extension of a class.
    Class(ClassId),
    /// The (whole) extension of a stored relation.
    Relation(RelationId),
    /// A temporary file holding an intermediate result (e.g. the
    /// materialized `Influencer` of Figure 4).
    Temporary,
}

/// Fragmentation of a decomposed extension.
#[derive(Debug, Clone, PartialEq)]
pub enum FragmentSpec {
    /// Horizontal fragment: a predicate-defined subset of instances.
    /// `fraction` is the fraction of the extension it holds.
    Horizontal {
        /// Human-readable description of the fragmentation predicate.
        predicate: String,
        /// Fraction of the class extension stored here.
        fraction: f64,
    },
    /// Vertical fragment: the projection of the extension on a subset of
    /// attributes (the oid is implicitly kept in every fragment).
    Vertical {
        /// Attributes stored in this fragment.
        attrs: Vec<AttrId>,
    },
}

/// Descriptor of one atomic entity.
#[derive(Debug, Clone)]
pub struct EntityDesc {
    /// Entity id.
    pub id: EntityId,
    /// Name, for display (`Composer`, `Composer_v1`, `Influencer'`).
    pub name: String,
    /// Conceptual source.
    pub source: EntitySource,
    /// `None` for a non-decomposed extension.
    pub fragment: Option<FragmentSpec>,
    /// Attributes whose referenced sub-objects are clustered close to the
    /// owner (same or neighbour page) — §3's static clustering strategy.
    pub clustered_attrs: Vec<AttrId>,
}

impl EntityDesc {
    /// Is `attr`'s target clustered with this entity's instances?
    pub fn is_clustered(&self, attr: AttrId) -> bool {
        self.clustered_attrs.contains(&attr)
    }
}

/// B+-tree statistics used by the cost formulas of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexStats {
    /// Number of levels of the B+-tree (`nblevels`).
    pub nblevels: u32,
    /// Number of leaves (`nbleaves`).
    pub nbleaves: u32,
}

/// Kind of index available in the physical schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexKindDesc {
    /// Selection index on one attribute of one class.
    Selection {
        /// Indexed class.
        class: ClassId,
        /// Indexed attribute.
        attr: AttrId,
    },
    /// Path index \[MS86\] on `C1.A1...A(n-1)`: entries are tuples of the
    /// oids of the objects along the path. Denoted by its attribute
    /// sequence, e.g. `works.instruments`.
    Path {
        /// The path as `(class, attribute)` steps; `path[i].0` is the class
        /// in which `path[i].1` is defined.
        path: Vec<(ClassId, AttrId)>,
    },
}

/// Descriptor of an index.
#[derive(Debug, Clone)]
pub struct IndexDesc {
    /// Index id.
    pub id: IndexId,
    /// Kind and coverage.
    pub kind: IndexKindDesc,
    /// B+-tree statistics.
    pub stats: IndexStats,
}

impl IndexDesc {
    /// The attribute-name path of a path index, as printed by the paper
    /// (e.g. `works.instruments`). Selection indices render as
    /// `Class.attr`.
    pub fn display_name(&self, catalog: &oorq_schema::Catalog) -> String {
        match &self.kind {
            IndexKindDesc::Selection { class, attr } => format!(
                "{}.{}",
                catalog.class(*class).name,
                catalog.attribute(*class, *attr).name
            ),
            IndexKindDesc::Path { path } => path
                .iter()
                .map(|(c, a)| catalog.attribute(*c, *a).name.clone())
                .collect::<Vec<_>>()
                .join("."),
        }
    }
}

/// The physical schema: the set of atomic entities and indices.
#[derive(Debug, Clone, Default)]
pub struct PhysicalSchema {
    entities: Vec<EntityDesc>,
    indexes: Vec<IndexDesc>,
    class_entities: HashMap<ClassId, Vec<EntityId>>,
    relation_entities: HashMap<RelationId, Vec<EntityId>>,
}

impl PhysicalSchema {
    /// New empty physical schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an entity; its `id` field is assigned here.
    pub fn add_entity(
        &mut self,
        name: impl Into<String>,
        source: EntitySource,
        fragment: Option<FragmentSpec>,
    ) -> EntityId {
        let id = EntityId(self.entities.len() as u32);
        match &source {
            EntitySource::Class(c) => self.class_entities.entry(*c).or_default().push(id),
            EntitySource::Relation(r) => self.relation_entities.entry(*r).or_default().push(id),
            EntitySource::Temporary => {}
        }
        self.entities.push(EntityDesc {
            id,
            name: name.into(),
            source,
            fragment,
            clustered_attrs: Vec::new(),
        });
        id
    }

    /// Declare that sub-objects referenced by `attr` of `entity` are
    /// clustered with the owner instances.
    pub fn set_clustered(&mut self, entity: EntityId, attr: AttrId) {
        let e = &mut self.entities[entity.0 as usize];
        if !e.clustered_attrs.contains(&attr) {
            e.clustered_attrs.push(attr);
        }
    }

    /// Remove an entity from its class/relation lookup (it keeps its
    /// descriptor but no longer implements the extension — used when a
    /// decomposition supersedes the original home entity).
    pub fn deactivate_entity(&mut self, id: EntityId) {
        for v in self.class_entities.values_mut() {
            v.retain(|e| *e != id);
        }
        for v in self.relation_entities.values_mut() {
            v.retain(|e| *e != id);
        }
    }

    /// Register an index descriptor; its id is assigned here.
    pub fn add_index(&mut self, kind: IndexKindDesc, stats: IndexStats) -> IndexId {
        let id = IndexId(self.indexes.len() as u32);
        self.indexes.push(IndexDesc { id, kind, stats });
        id
    }

    /// Update the statistics of an index (after bulk loading).
    pub fn set_index_stats(&mut self, id: IndexId, stats: IndexStats) {
        self.indexes[id.0 as usize].stats = stats;
    }

    /// Entity descriptor by id.
    pub fn entity(&self, id: EntityId) -> &EntityDesc {
        &self.entities[id.0 as usize]
    }

    /// All entities.
    pub fn entities(&self) -> &[EntityDesc] {
        &self.entities
    }

    /// Index descriptor by id.
    #[allow(clippy::should_implement_trait)]
    pub fn index(&self, id: IndexId) -> &IndexDesc {
        &self.indexes[id.0 as usize]
    }

    /// All indexes.
    pub fn indexes(&self) -> &[IndexDesc] {
        &self.indexes
    }

    /// The entities implementing a class extension.
    pub fn entities_of_class(&self, class: ClassId) -> &[EntityId] {
        self.class_entities
            .get(&class)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The entities implementing a relation extension.
    pub fn entities_of_relation(&self, rel: RelationId) -> &[EntityId] {
        self.relation_entities
            .get(&rel)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Find a selection index on `class.attr`.
    pub fn selection_index(&self, class: ClassId, attr: AttrId) -> Option<&IndexDesc> {
        self.indexes.iter().find(|d| {
            matches!(&d.kind, IndexKindDesc::Selection { class: c, attr: a }
                     if *c == class && *a == attr)
        })
    }

    /// Find a path index whose attribute path equals `path` — the paper's
    /// `existPathIndex` constraint of the `collapse` action.
    pub fn path_index(&self, path: &[(ClassId, AttrId)]) -> Option<&IndexDesc> {
        self.indexes
            .iter()
            .find(|d| matches!(&d.kind, IndexKindDesc::Path { path: p } if p == path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_registration_and_lookup() {
        let mut ps = PhysicalSchema::new();
        let c = ClassId(0);
        let e0 = ps.add_entity("Composer", EntitySource::Class(c), None);
        let e1 = ps.add_entity(
            "Composer_h1",
            EntitySource::Class(c),
            Some(FragmentSpec::Horizontal {
                predicate: "name < 'M'".into(),
                fraction: 0.5,
            }),
        );
        assert_eq!(ps.entities_of_class(c), &[e0, e1]);
        assert_eq!(ps.entity(e0).name, "Composer");
        assert!(ps.entity(e1).fragment.is_some());
    }

    #[test]
    fn clustering_flags() {
        let mut ps = PhysicalSchema::new();
        let e = ps.add_entity("C", EntitySource::Class(ClassId(0)), None);
        assert!(!ps.entity(e).is_clustered(AttrId(1)));
        ps.set_clustered(e, AttrId(1));
        ps.set_clustered(e, AttrId(1)); // idempotent
        assert!(ps.entity(e).is_clustered(AttrId(1)));
        assert_eq!(ps.entity(e).clustered_attrs.len(), 1);
    }

    #[test]
    fn index_lookup_by_shape() {
        let mut ps = PhysicalSchema::new();
        let stats = IndexStats {
            nblevels: 2,
            nbleaves: 10,
        };
        let sel = ps.add_index(
            IndexKindDesc::Selection {
                class: ClassId(0),
                attr: AttrId(0),
            },
            stats,
        );
        let path = vec![(ClassId(0), AttrId(4)), (ClassId(1), AttrId(2))];
        let pix = ps.add_index(IndexKindDesc::Path { path: path.clone() }, stats);
        assert_eq!(ps.selection_index(ClassId(0), AttrId(0)).unwrap().id, sel);
        assert!(ps.selection_index(ClassId(0), AttrId(1)).is_none());
        assert_eq!(ps.path_index(&path).unwrap().id, pix);
        assert!(ps.path_index(&path[..1]).is_none());
    }
}
