//! Storage segments: the physical home of an entity's records.

use std::collections::HashMap;

use oorq_schema::ResolvedType;

use crate::page::WidthModel;
use crate::value::Value;

/// One stored record: a logical key (oid index or row id) plus the
/// attribute/field values in layout order.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Logical key: oid index for class extents, row id for relations.
    pub key: u32,
    /// Field values in layout order.
    pub values: Vec<Value>,
}

/// The records of one atomic entity, kept in *physical* (page) order.
///
/// A separate key map supports oid lookup; physical position `p` lives on
/// page `p / rows_per_page`. Clustering is realized by physical order:
/// sub-objects created right after their owner land on correlated pages,
/// while [`Segment::shuffle`] models an unclustered placement.
#[derive(Debug, Clone)]
pub struct Segment {
    field_types: Vec<ResolvedType>,
    rows: Vec<Row>,
    by_key: HashMap<u32, u32>,
    rows_per_page: u32,
}

impl Segment {
    /// New empty segment for records of the given shape.
    pub fn new(field_types: Vec<ResolvedType>, width: &WidthModel) -> Self {
        let rows_per_page = width.records_per_page(&field_types);
        Self::with_rpp(field_types, rows_per_page)
    }

    /// New empty segment with an explicit records-per-page (used when the
    /// stored width differs from the full record shape, e.g. computed
    /// attributes occupy a slot but no bytes).
    pub fn with_rpp(field_types: Vec<ResolvedType>, rows_per_page: u32) -> Self {
        Segment {
            field_types,
            rows: Vec::new(),
            by_key: HashMap::new(),
            rows_per_page: rows_per_page.max(1),
        }
    }

    /// Replace the values of the record at a physical position.
    pub fn replace_values(&mut self, pos: u32, values: Vec<Value>) {
        if let Some(row) = self.rows.get_mut(pos as usize) {
            row.values = values;
        }
    }

    /// Field types of this segment's records.
    pub fn field_types(&self) -> &[ResolvedType] {
        &self.field_types
    }

    /// Records per page.
    pub fn rows_per_page(&self) -> u32 {
        self.rows_per_page
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of pages occupied.
    pub fn num_pages(&self) -> u32 {
        (self.rows.len() as u32).div_ceil(self.rows_per_page)
    }

    /// Append a record at the end (next free slot). Returns its physical
    /// position.
    pub fn append(&mut self, row: Row) -> u32 {
        let pos = self.rows.len() as u32;
        self.by_key.insert(row.key, pos);
        self.rows.push(row);
        pos
    }

    /// Physical position of the record with the given key.
    pub fn position_of(&self, key: u32) -> Option<u32> {
        self.by_key.get(&key).copied()
    }

    /// The page of a physical position.
    pub fn page_of_position(&self, pos: u32) -> u32 {
        pos / self.rows_per_page
    }

    /// Record at a physical position.
    pub fn row_at(&self, pos: u32) -> Option<&Row> {
        self.rows.get(pos as usize)
    }

    /// Record by key.
    pub fn row_by_key(&self, key: u32) -> Option<&Row> {
        self.position_of(key).and_then(|p| self.row_at(p))
    }

    /// Records of one page, with their physical positions.
    pub fn page_rows(&self, page: u32) -> &[Row] {
        let start = (page * self.rows_per_page) as usize;
        let end = (start + self.rows_per_page as usize).min(self.rows.len());
        if start >= self.rows.len() {
            &[]
        } else {
            &self.rows[start..end]
        }
    }

    /// Iterate all records in physical order.
    pub fn iter(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter()
    }

    /// Remove all records.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.by_key.clear();
    }

    /// Permute the physical order with a deterministic Fisher–Yates
    /// driven by a small internal LCG, modelling an *unclustered* /
    /// scattered placement (insertion order models a clustered one).
    pub fn shuffle(&mut self, seed: u64) {
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let n = self.rows.len();
        for i in (1..n).rev() {
            let j = (next() as usize) % (i + 1);
            self.rows.swap(i, j);
        }
        self.by_key = self
            .rows
            .iter()
            .enumerate()
            .map(|(p, r)| (r.key, p as u32))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oorq_schema::{AtomicType, ResolvedType};

    fn int_segment(rpp_target: usize) -> Segment {
        // record width = 8 (key) + 8 (int) = 16; choose page size for target.
        let width = WidthModel {
            page_size: 16 * rpp_target,
            ..WidthModel::default()
        };
        Segment::new(vec![ResolvedType::Atomic(AtomicType::Int)], &width)
    }

    #[test]
    fn append_lookup_and_pages() {
        let mut s = int_segment(4);
        assert_eq!(s.rows_per_page(), 4);
        for k in 0..10u32 {
            s.append(Row {
                key: k,
                values: vec![Value::Int(k as i64)],
            });
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.num_pages(), 3);
        assert_eq!(s.position_of(7), Some(7));
        assert_eq!(s.page_of_position(7), 1);
        assert_eq!(s.row_by_key(9).unwrap().values[0], Value::Int(9));
        assert_eq!(s.page_rows(2).len(), 2);
        assert_eq!(s.page_rows(5).len(), 0);
    }

    #[test]
    fn shuffle_preserves_contents_and_remaps_keys() {
        let mut s = int_segment(4);
        for k in 0..32u32 {
            s.append(Row {
                key: k,
                values: vec![Value::Int(k as i64)],
            });
        }
        s.shuffle(42);
        // Every key still resolves to its record.
        for k in 0..32u32 {
            assert_eq!(s.row_by_key(k).unwrap().values[0], Value::Int(k as i64));
        }
        // And the order actually changed.
        let order: Vec<u32> = s.iter().map(|r| r.key).collect();
        assert_ne!(order, (0..32).collect::<Vec<_>>());
        // Shuffle is deterministic in the seed.
        let mut s2 = int_segment(4);
        for k in 0..32u32 {
            s2.append(Row {
                key: k,
                values: vec![Value::Int(k as i64)],
            });
        }
        s2.shuffle(42);
        assert_eq!(order, s2.iter().map(|r| r.key).collect::<Vec<_>>());
    }

    #[test]
    fn clear_empties_segment() {
        let mut s = int_segment(4);
        s.append(Row {
            key: 0,
            values: vec![Value::Int(1)],
        });
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.position_of(0), None);
        assert_eq!(s.num_pages(), 0);
    }
}
