//! Storage errors.

use std::fmt;

use oorq_schema::ClassId;

use crate::physical::EntityId;
use crate::value::Oid;

/// Errors raised by the object store.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// Wrong number of values supplied for a record.
    ArityMismatch {
        /// Where it happened.
        context: String,
        /// Expected value count.
        expected: usize,
        /// Supplied value count.
        got: usize,
    },
    /// An oid does not denote a stored object.
    DanglingOid(Oid),
    /// An entity id is unknown or of the wrong kind for the operation.
    BadEntity(EntityId),
    /// Operation requires a temporary entity.
    NotTemporary(EntityId),
    /// A class has no home entity (should not happen on a well-formed DB).
    NoHome(ClassId),
    /// The extension is decomposed and the operation needs the full
    /// extension.
    Decomposed(ClassId),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ArityMismatch {
                context,
                expected,
                got,
            } => {
                write!(f, "{context}: expected {expected} values, got {got}")
            }
            StorageError::DanglingOid(o) => write!(f, "dangling oid {o}"),
            StorageError::BadEntity(e) => write!(f, "bad entity {e}"),
            StorageError::NotTemporary(e) => write!(f, "entity {e} is not a temporary"),
            StorageError::NoHome(c) => write!(f, "class {c} has no home entity"),
            StorageError::Decomposed(c) => write!(f, "class {c} is decomposed"),
        }
    }
}

impl std::error::Error for StorageError {}
