//! Database-level tests for the object store.

use std::sync::Arc;

use oorq_schema::{
    AttrId, AttributeDef, Catalog, ClassDef, Field, RelationDef, SchemaBuilder, TypeExpr,
};

use crate::*;

/// A small two-class schema: `Owner` with a set of `Item`s and a scalar
/// self-reference, plus a stored relation.
fn tiny_catalog() -> Arc<Catalog> {
    Arc::new(
        SchemaBuilder::new()
            .class(
                ClassDef::new("Owner")
                    .attr(AttributeDef::stored("name", TypeExpr::text()))
                    .attr(AttributeDef::stored("parent", TypeExpr::class("Owner")))
                    .attr(AttributeDef::stored(
                        "items",
                        TypeExpr::set(TypeExpr::class("Item")),
                    ))
                    .attr(AttributeDef::computed("rank", TypeExpr::int(), 3.0)),
            )
            .class(
                ClassDef::new("Item")
                    .attr(AttributeDef::stored("label", TypeExpr::text()))
                    .attr(AttributeDef::stored("weight", TypeExpr::int())),
            )
            .relation(RelationDef::new(
                "Likes",
                TypeExpr::Tuple(vec![
                    Field::new("who", TypeExpr::class("Owner")),
                    Field::new("what", TypeExpr::class("Item")),
                ]),
            ))
            .build()
            .unwrap(),
    )
}

fn small_db() -> Database {
    let cat = tiny_catalog();
    let cfg = StorageConfig {
        buffer_frames: 4,
        width: WidthModel {
            page_size: 256,
            ..WidthModel::default()
        },
    };
    Database::new(cat, cfg)
}

#[test]
fn insert_and_read_objects() {
    let mut db = small_db();
    let owner_cls = db.catalog().class_by_name("Owner").unwrap();
    let item_cls = db.catalog().class_by_name("Item").unwrap();
    let item = db
        .insert_object(item_cls, vec![Value::text("apple"), Value::Int(3)])
        .unwrap();
    let owner = db
        .insert_object(
            owner_cls,
            vec![
                Value::text("ada"),
                Value::Null,
                Value::Set(vec![item.into()]),
            ],
        )
        .unwrap();
    assert_eq!(owner.index, 0);
    assert_eq!(db.object_count(owner_cls), 1);

    let vals = db.read_object(owner).unwrap();
    // layout: name, birth... here: name, parent, items, rank(computed -> Null)
    assert_eq!(vals[0], Value::text("ada"));
    assert_eq!(vals[3], Value::Null, "computed slot holds Null");
    let items = db.read_attr(owner, AttrId(2)).unwrap();
    assert_eq!(items.members()[0], Value::Oid(item));
}

#[test]
fn arity_mismatch_rejected() {
    let mut db = small_db();
    let item_cls = db.catalog().class_by_name("Item").unwrap();
    let err = db.insert_object(item_cls, vec![Value::Int(1)]).unwrap_err();
    assert!(matches!(
        err,
        StorageError::ArityMismatch {
            expected: 2,
            got: 1,
            ..
        }
    ));
}

#[test]
fn dangling_oid_rejected() {
    let db = small_db();
    let item_cls = db.catalog().class_by_name("Item").unwrap();
    let err = db.read_object(Oid::new(item_cls, 99)).unwrap_err();
    assert_eq!(err, StorageError::DanglingOid(Oid::new(item_cls, 99)));
}

#[test]
fn set_attr_wires_references() {
    let mut db = small_db();
    let owner_cls = db.catalog().class_by_name("Owner").unwrap();
    let a = db
        .insert_object(
            owner_cls,
            vec![Value::text("a"), Value::Null, Value::Set(vec![])],
        )
        .unwrap();
    let b = db
        .insert_object(
            owner_cls,
            vec![Value::text("b"), Value::Null, Value::Set(vec![])],
        )
        .unwrap();
    db.set_attr(b, AttrId(1), Value::Oid(a)).unwrap();
    assert_eq!(db.read_attr(b, AttrId(1)).unwrap(), Value::Oid(a));
}

#[test]
fn scans_account_page_io() {
    let mut db = small_db();
    let item_cls = db.catalog().class_by_name("Item").unwrap();
    for i in 0..40 {
        db.insert_object(item_cls, vec![Value::text(format!("i{i}")), Value::Int(i)])
            .unwrap();
    }
    let entity = db.physical().entities_of_class(item_cls)[0];
    let pages = db.num_pages(entity);
    assert!(pages > 1, "need a multi-page extent for this test");
    db.cold_cache();
    let rows = db.scan(entity);
    assert_eq!(rows.len(), 40);
    assert_eq!(db.io_stats().page_reads, pages as u64);
    // Second scan with a tiny buffer (4 frames) still misses every page
    // if the extent exceeds the buffer; otherwise hits.
    db.reset_io();
    let _ = db.scan(entity);
    if pages as usize > 4 {
        assert_eq!(db.io_stats().page_reads, pages as u64);
    } else {
        assert_eq!(db.io_stats().page_hits, pages as u64);
    }
}

#[test]
fn clustered_vs_shuffled_dereference_io() {
    // Owners reference items created right after them (clustered order).
    let mut db = small_db();
    let owner_cls = db.catalog().class_by_name("Owner").unwrap();
    let item_cls = db.catalog().class_by_name("Item").unwrap();
    let mut owners = Vec::new();
    for i in 0..64 {
        let item = db
            .insert_object(item_cls, vec![Value::text(format!("it{i}")), Value::Int(i)])
            .unwrap();
        let owner = db
            .insert_object(
                owner_cls,
                vec![
                    Value::text(format!("ow{i}")),
                    Value::Null,
                    Value::Set(vec![item.into()]),
                ],
            )
            .unwrap();
        owners.push((owner, item));
    }
    let item_entity = db.physical().entities_of_class(item_cls)[0];

    // Clustered (insertion-order) placement: dereferencing items of
    // consecutive owners hits mostly-resident pages.
    db.cold_cache();
    for (_, item) in &owners {
        db.read_attr(*item, AttrId(1)).unwrap();
    }
    let clustered_reads = db.io_stats().page_reads;

    // Scattered placement: many more physical reads.
    db.shuffle_entity(item_entity, 7);
    db.cold_cache();
    for (_, item) in &owners {
        db.read_attr(*item, AttrId(1)).unwrap();
    }
    let scattered_reads = db.io_stats().page_reads;
    assert!(
        scattered_reads > clustered_reads,
        "scattered {scattered_reads} should exceed clustered {clustered_reads}"
    );
}

#[test]
fn vertical_decomposition_reads_only_needed_fragment() {
    let mut db = small_db();
    let item_cls = db.catalog().class_by_name("Item").unwrap();
    for i in 0..32 {
        db.insert_object(item_cls, vec![Value::text(format!("i{i}")), Value::Int(i)])
            .unwrap();
    }
    let frags = db
        .decompose_vertical(item_cls, &[vec![AttrId(0)], vec![AttrId(1)]])
        .unwrap();
    assert_eq!(frags.len(), 2);
    // Whole-object read touches both fragments.
    db.cold_cache();
    let vals = db.read_object(Oid::new(item_cls, 5)).unwrap();
    assert_eq!(vals[1], Value::Int(5));
    assert_eq!(db.io_stats().page_reads, 2);
    // Single-attribute read touches one.
    db.cold_cache();
    let w = db.read_attr(Oid::new(item_cls, 9), AttrId(1)).unwrap();
    assert_eq!(w, Value::Int(9));
    assert_eq!(db.io_stats().page_reads, 1);
    // Narrow fragment occupies fewer pages than the original extent shape.
    let (f1, f0) = (frags[1], frags[0]);
    assert!(db.num_pages(f1) <= db.num_pages(f0));
    // Further decomposition is rejected.
    assert!(matches!(
        db.decompose_vertical(item_cls, &[vec![AttrId(0), AttrId(1)]]),
        Err(StorageError::Decomposed(_))
    ));
}

#[test]
fn horizontal_decomposition_routes_and_records_fractions() {
    let mut db = small_db();
    let item_cls = db.catalog().class_by_name("Item").unwrap();
    for i in 0..20 {
        db.insert_object(item_cls, vec![Value::text(format!("i{i}")), Value::Int(i)])
            .unwrap();
    }
    let frags = db
        .decompose_horizontal(
            item_cls,
            2,
            &["weight < 15".into(), "weight >= 15".into()],
            |vals| if vals[1].as_int().unwrap() < 15 { 0 } else { 1 },
        )
        .unwrap();
    assert_eq!(db.entity_len(frags[0]), 15);
    assert_eq!(db.entity_len(frags[1]), 5);
    match &db.physical().entity(frags[0]).fragment {
        Some(FragmentSpec::Horizontal { fraction, .. }) => {
            assert!((fraction - 0.75).abs() < 1e-9)
        }
        other => panic!("expected horizontal fragment, got {other:?}"),
    }
    // Objects remain addressable by oid.
    let v = db.read_object(Oid::new(item_cls, 17)).unwrap();
    assert_eq!(v[1], Value::Int(17));
}

#[test]
fn temporaries_append_scan_truncate() {
    let mut db = small_db();
    let t = db.create_temp(
        "Influencer'",
        vec![
            oorq_schema::ResolvedType::Atomic(oorq_schema::AtomicType::Int),
            oorq_schema::ResolvedType::Atomic(oorq_schema::AtomicType::Int),
        ],
    );
    db.reset_io();
    for i in 0..50 {
        db.append_temp(t, vec![Value::Int(i), Value::Int(i * 2)])
            .unwrap();
    }
    assert!(db.io_stats().page_writes > 0, "page writes counted");
    assert_eq!(db.entity_len(t), 50);
    let rows = db.scan(t);
    assert_eq!(rows.len(), 50);
    db.truncate_temp(t).unwrap();
    assert_eq!(db.entity_len(t), 0);
    // Appending to a non-temporary is rejected.
    let item_cls = db.catalog().class_by_name("Item").unwrap();
    let item_entity = db.physical().entities_of_class(item_cls)[0];
    assert!(matches!(
        db.append_temp(item_entity, vec![]),
        Err(StorageError::NotTemporary(_))
    ));
}

#[test]
fn append_temp_counts_one_write_per_page_started() {
    // `small_db`'s 256-byte pages hold 10 `[int, int]` records (8-byte
    // header + two 8-byte fields), so 25 appends start exactly pages
    // 0, 1 and 2 — the write counter must say 3, not 25 and not 2.
    let mut db = small_db();
    let int = oorq_schema::ResolvedType::Atomic(oorq_schema::AtomicType::Int);
    let t = db.create_temp("acc", vec![int.clone(), int]);
    db.reset_io();
    for i in 0..25 {
        let w = db.io_stats().page_writes;
        let expect = (i / 10 + 1) as u64;
        db.append_temp(t, vec![Value::Int(i), Value::Int(-i)])
            .unwrap();
        let after = db.io_stats().page_writes;
        assert_eq!(
            after, expect,
            "row {i}: {w} writes before, {after} after (page boundary accounting)"
        );
    }
    assert_eq!(db.num_pages(t), 3);
}

#[test]
fn truncated_temp_reuse_restarts_pages_and_accounting() {
    let mut db = small_db();
    let int = oorq_schema::ResolvedType::Atomic(oorq_schema::AtomicType::Int);
    let t = db.create_temp("acc", vec![int.clone(), int]);
    db.reset_io();
    for i in 0..12 {
        db.append_temp(t, vec![Value::Int(i), Value::Int(i)])
            .unwrap();
    }
    assert_eq!(db.io_stats().page_writes, 2, "pages 0 and 1 started");
    db.truncate_temp(t).unwrap();
    assert_eq!(db.entity_len(t), 0);
    assert_eq!(db.num_pages(t), 0);
    // Reuse restarts at page 0: the fresh first page is written (and
    // paid for) again, and scans see only the new contents — no frame
    // from before the truncate may satisfy a read.
    for i in 0..8 {
        db.append_temp(t, vec![Value::Int(100 + i), Value::Int(i)])
            .unwrap();
    }
    assert_eq!(db.io_stats().page_writes, 3, "restarted page 0 paid for");
    assert_eq!(db.num_pages(t), 1);
    let rows = db.scan(t);
    assert_eq!(rows.len(), 8);
    assert!(rows.iter().all(|r| r.values[0].as_int().unwrap() >= 100));
}

#[test]
fn worker_views_forked_mid_temp_merge_write_accounting() {
    // A temporary half-filled by one lane and extended by another (the
    // exchange pattern: breaker temps outlive a fork) must charge each
    // page start to exactly one lane, and the merged totals must add up.
    let mut db = small_db();
    let int = oorq_schema::ResolvedType::Atomic(oorq_schema::AtomicType::Int);
    let t = db.create_temp("acc", vec![int.clone(), int]);
    db.reset_io();
    for i in 0..5 {
        db.append_temp(t, vec![Value::Int(i), Value::Int(i)])
            .unwrap();
    }
    assert_eq!(db.io_stats().page_writes, 1, "main lane started page 0");

    // Fork a 2-worker-style view mid-page: rows 5..9 continue page 0
    // (already paid), row 10 starts page 1 in this lane.
    db.install_worker_buffer(4, 2);
    for i in 5..15 {
        db.append_temp(t, vec![Value::Int(i), Value::Int(i)])
            .unwrap();
    }
    let lane = db.take_worker_buffer();
    assert_eq!(lane.page_writes, 1, "lane paid only the page it started");
    db.absorb_io(lane);
    assert_eq!(db.io_stats().page_writes, 2);

    // A second lane scanning the temp pays its own cold reads (forked
    // views start empty) and they merge into the shared totals too.
    db.install_worker_buffer(4, 2);
    let rows = db.scan(t);
    let lane2 = db.take_worker_buffer();
    assert_eq!(rows.len(), 15);
    assert_eq!(lane2.page_reads, 2, "both temp pages cold in the fork");
    assert_eq!(lane2.page_writes, 0);
    db.absorb_io(lane2);
    let total = db.io_stats();
    assert_eq!(total.page_writes, 2);
    assert!(total.page_reads >= 2);
}

#[test]
fn relation_rows_roundtrip() {
    let mut db = small_db();
    let likes = db.catalog().relation_by_name("Likes").unwrap();
    let owner_cls = db.catalog().class_by_name("Owner").unwrap();
    let item_cls = db.catalog().class_by_name("Item").unwrap();
    let r0 = db
        .insert_row(
            likes,
            vec![Oid::new(owner_cls, 0).into(), Oid::new(item_cls, 0).into()],
        )
        .unwrap();
    let r1 = db
        .insert_row(
            likes,
            vec![Oid::new(owner_cls, 1).into(), Oid::new(item_cls, 1).into()],
        )
        .unwrap();
    assert_eq!((r0, r1), (0, 1));
    let entity = db.physical().entities_of_relation(likes)[0];
    assert_eq!(db.scan(entity).len(), 2);
    let err = db.insert_row(likes, vec![Value::Int(1)]).unwrap_err();
    assert!(matches!(err, StorageError::ArityMismatch { .. }));
}

#[test]
fn stats_collect_cardinality_pages_fanout_and_chains() {
    let mut db = small_db();
    let owner_cls = db.catalog().class_by_name("Owner").unwrap();
    let item_cls = db.catalog().class_by_name("Item").unwrap();
    // A chain of 4 owners: o3 -> o2 -> o1 -> o0 -> null, each owning 2 items.
    let mut prev: Option<Oid> = None;
    for i in 0..4 {
        let it1 = db
            .insert_object(item_cls, vec![Value::text(format!("a{i}")), Value::Int(i)])
            .unwrap();
        let it2 = db
            .insert_object(item_cls, vec![Value::text(format!("b{i}")), Value::Int(i)])
            .unwrap();
        let o = db
            .insert_object(
                owner_cls,
                vec![
                    Value::text(format!("o{i}")),
                    prev.map(Value::Oid).unwrap_or(Value::Null),
                    Value::Set(vec![it1.into(), it2.into()]),
                ],
            )
            .unwrap();
        prev = Some(o);
    }
    let stats = DbStats::collect(&db);
    let owner_entity = db.physical().entities_of_class(owner_cls)[0];
    let es = stats.entity(owner_entity).unwrap();
    assert_eq!(es.cardinality, 4);
    assert!(es.pages >= 1);
    assert!(
        (es.attrs[2].avg_fanout - 2.0).abs() < 1e-9,
        "items fanout is 2"
    );
    assert!(
        (es.attrs[1].null_fraction - 0.25).abs() < 1e-9,
        "one root owner"
    );
    let chain = stats.chain(owner_cls, AttrId(1)).unwrap();
    assert_eq!(chain.max, 3);
    assert!((chain.avg - (0.0 + 1.0 + 2.0 + 3.0) / 4.0).abs() < 1e-9);
}

#[test]
fn chain_stats_survive_cycles() {
    let mut db = small_db();
    let owner_cls = db.catalog().class_by_name("Owner").unwrap();
    let a = db
        .insert_object(
            owner_cls,
            vec![Value::text("a"), Value::Null, Value::Set(vec![])],
        )
        .unwrap();
    let b = db
        .insert_object(
            owner_cls,
            vec![Value::text("b"), Value::Oid(a), Value::Set(vec![])],
        )
        .unwrap();
    db.set_attr(a, AttrId(1), Value::Oid(b)).unwrap(); // cycle a <-> b
    let stats = DbStats::collect(&db);
    assert!(
        stats.chain(owner_cls, AttrId(1)).is_some(),
        "cycle guard terminates"
    );
}

#[test]
fn snapshot_shares_data_and_isolates_mutation_and_io() {
    let mut db = small_db();
    let item_cls = db.catalog().class_by_name("Item").unwrap();
    for i in 0..10 {
        db.insert_object(item_cls, vec![Value::Text(format!("it{i}")), Value::Int(i)])
            .unwrap();
    }
    let item_entity = db.physical().entities_of_class(item_cls)[0];

    let snap = db.snapshot();
    // Identical data, independently accounted I/O.
    assert_eq!(db.scan_raw(item_entity), snap.scan_raw(item_entity));
    snap.scan(item_entity);
    assert!(snap.io_stats().page_reads > 0);
    assert_eq!(db.io_stats().page_reads, 0, "source buffer untouched");

    // A temp created in the snapshot does not exist in the source.
    let int = oorq_schema::ResolvedType::Atomic(oorq_schema::AtomicType::Int);
    let mut snap = snap;
    let t = snap.create_temp("session_tmp", vec![int]);
    snap.append_temp(t, vec![Value::Int(7)]).unwrap();
    assert_eq!(snap.entity_len(t), 1);
    assert!(db.physical().entities().len() < snap.physical().entities().len());

    // Copy-on-write: mutating the source after the snapshot leaves the
    // snapshot's view of shared segments intact.
    db.insert_object(item_cls, vec![Value::Text("new".into()), Value::Int(99)])
        .unwrap();
    assert_eq!(db.entity_len(item_entity), 11);
    assert_eq!(snap.entity_len(item_entity), 10);
}
