//! Path indices \[MS86\], a generalization of join indices \[Va87\].
//!
//! A path index on `C1.A1...A(n-1)` stores one entry per instantiation of
//! the whole path: a tuple of the oids of the objects along it (the
//! paper's example: triples of Composer, Composition, Instrument oids for
//! the path `works.instruments`). It accelerates accesses spanning the
//! whole nested-attribute hierarchy.

use oorq_schema::{AttrId, ClassId};
use oorq_storage::{Database, IndexId, IndexKindDesc, IndexStats, Oid, Value};

use crate::btree::BPlusTree;

/// A path index keyed by the head oid; each entry holds the oids of the
/// rest of the path.
#[derive(Debug)]
pub struct PathIndex {
    /// Registered descriptor id in the physical schema.
    pub id: IndexId,
    /// The indexed path as `(class, attribute)` steps.
    pub path: Vec<(ClassId, AttrId)>,
    tree: BPlusTree<Oid, Vec<Oid>>,
}

impl PathIndex {
    /// Build the index by traversing every path instantiation from the
    /// head class (bulk load, no I/O accounting) and register its
    /// descriptor in the physical schema.
    ///
    /// `path[i].0` is the class in which attribute `path[i].1` is defined;
    /// the attribute must reference a class (scalar or collection).
    pub fn build(db: &mut Database, path: Vec<(ClassId, AttrId)>) -> Self {
        assert!(!path.is_empty(), "path index needs at least one step");
        let mut tree = BPlusTree::with_default_order();
        let head_class = path[0].0;
        let n = db.object_count(head_class);
        for i in 0..n {
            let head = Oid::new(head_class, i);
            let mut tails: Vec<Vec<Oid>> = Vec::new();
            Self::traverse(db, head, &path, 0, &mut Vec::new(), &mut tails);
            for tail in tails {
                tree.insert(head, tail);
            }
        }
        let stats = IndexStats {
            nblevels: tree.nblevels(),
            nbleaves: tree.nbleaves(),
        };
        let id = db
            .physical_mut()
            .add_index(IndexKindDesc::Path { path: path.clone() }, stats);
        PathIndex { id, path, tree }
    }

    /// A join index \[Va87\]: the single-step special case.
    pub fn join_index(db: &mut Database, class: ClassId, attr: AttrId) -> Self {
        Self::build(db, vec![(class, attr)])
    }

    fn traverse(
        db: &Database,
        at: Oid,
        path: &[(ClassId, AttrId)],
        step: usize,
        prefix: &mut Vec<Oid>,
        out: &mut Vec<Vec<Oid>>,
    ) {
        if step == path.len() {
            out.push(prefix.clone());
            return;
        }
        let (_, attr) = path[step];
        let Ok(v) = db.read_attr_raw(at, attr) else {
            return;
        };
        for m in v.members() {
            if let Value::Oid(next) = m {
                prefix.push(*next);
                Self::traverse(db, *next, path, step + 1, prefix, out);
                prefix.pop();
            }
        }
    }

    /// Full path instantiations starting at `head` (each is the oids of
    /// the path *after* the head). Charges `nblevels` index page reads
    /// plus extra leaf reads for large fan-outs.
    pub fn probe(&self, db: &Database, head: Oid) -> Vec<Vec<Oid>> {
        let hits = self.tree.get(&head).map(|s| s.to_vec()).unwrap_or_default();
        let extra_leaves = (hits.len() as u64).div_ceil(8).saturating_sub(1);
        db.note_index_reads(self.tree.nblevels() as u64 + extra_leaves);
        hits
    }

    /// The oids at the *end* of the path from `head` (deduplicated,
    /// preserving first-seen order).
    pub fn probe_ends(&self, db: &Database, head: Oid) -> Vec<Oid> {
        let mut seen = std::collections::HashSet::new();
        self.probe(db, head)
            .into_iter()
            .filter_map(|tail| tail.last().copied())
            .filter(|o| seen.insert(*o))
            .collect()
    }

    /// Number of entries (path instantiations).
    pub fn entry_count(&self) -> usize {
        self.tree.len()
    }

    /// Index statistics.
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            nblevels: self.tree.nblevels(),
            nbleaves: self.tree.nbleaves(),
        }
    }
}
