//! A from-scratch B+-tree used for selection and path indices.
//!
//! The tree is an in-memory simulation of a disk-resident B+-tree: nodes
//! have a bounded *order* (max children / max leaf entries) standing in
//! for page capacity, and the tree reports `nblevels` and `nbleaves` —
//! the two statistics the paper's Figure 5 cost formulas consume.
//!
//! The tree is a multimap: duplicate keys accumulate their values in the
//! same leaf entry. Deletion is not supported (the paper's physical
//! design is static: indices are built after bulk load).

use std::fmt::Debug;

/// A B+-tree multimap with bounded node fan-out.
#[derive(Debug, Clone)]
pub struct BPlusTree<K, V> {
    root: Node<K, V>,
    order: usize,
    len: usize,
    distinct: usize,
}

#[derive(Debug, Clone)]
enum Node<K, V> {
    Leaf {
        entries: Vec<(K, Vec<V>)>,
    },
    Internal {
        keys: Vec<K>,
        children: Vec<Node<K, V>>,
    },
}

/// Result of a node insert: either it fit, or the node split and promotes
/// a separator key plus a new right sibling.
enum InsertResult<K, V> {
    Fit,
    Split(K, Node<K, V>),
}

impl<K: Ord + Clone + Debug, V: Clone> BPlusTree<K, V> {
    /// New empty tree. `order` is the maximum number of children of an
    /// internal node (and of entries of a leaf); minimum 4.
    pub fn new(order: usize) -> Self {
        BPlusTree {
            root: Node::Leaf {
                entries: Vec::new(),
            },
            order: order.max(4),
            len: 0,
            distinct: 0,
        }
    }

    /// Default order modelling ~page-sized nodes.
    pub fn with_default_order() -> Self {
        Self::new(64)
    }

    /// Total number of (key, value) pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.distinct
    }

    /// Insert a pair; duplicate keys accumulate.
    pub fn insert(&mut self, key: K, value: V) {
        let order = self.order;
        let mut new_key_inserted = false;
        match Self::insert_into(&mut self.root, key, value, order, &mut new_key_inserted) {
            InsertResult::Fit => {}
            InsertResult::Split(sep, right) => {
                let left = std::mem::replace(&mut self.root, Node::Leaf { entries: vec![] });
                self.root = Node::Internal {
                    keys: vec![sep],
                    children: vec![left, right],
                };
            }
        }
        self.len += 1;
        if new_key_inserted {
            self.distinct += 1;
        }
    }

    fn insert_into(
        node: &mut Node<K, V>,
        key: K,
        value: V,
        order: usize,
        new_key: &mut bool,
    ) -> InsertResult<K, V> {
        match node {
            Node::Leaf { entries } => {
                match entries.binary_search_by(|(k, _)| k.cmp(&key)) {
                    Ok(i) => entries[i].1.push(value),
                    Err(i) => {
                        entries.insert(i, (key, vec![value]));
                        *new_key = true;
                    }
                }
                if entries.len() > order {
                    let mid = entries.len() / 2;
                    let right_entries = entries.split_off(mid);
                    let sep = right_entries[0].0.clone();
                    InsertResult::Split(
                        sep,
                        Node::Leaf {
                            entries: right_entries,
                        },
                    )
                } else {
                    InsertResult::Fit
                }
            }
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search(&key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                match Self::insert_into(&mut children[idx], key, value, order, new_key) {
                    InsertResult::Fit => InsertResult::Fit,
                    InsertResult::Split(sep, right) => {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if children.len() > order {
                            let mid = keys.len() / 2;
                            let promoted = keys[mid].clone();
                            let right_keys = keys.split_off(mid + 1);
                            keys.pop(); // drop the promoted separator
                            let right_children = children.split_off(mid + 1);
                            InsertResult::Split(
                                promoted,
                                Node::Internal {
                                    keys: right_keys,
                                    children: right_children,
                                },
                            )
                        } else {
                            InsertResult::Fit
                        }
                    }
                }
            }
        }
    }

    /// Values associated with a key.
    pub fn get(&self, key: &K) -> Option<&[V]> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { entries } => {
                    return entries
                        .binary_search_by(|(k, _)| k.cmp(key))
                        .ok()
                        .map(|i| entries[i].1.as_slice());
                }
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search(key) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    node = &children[idx];
                }
            }
        }
    }

    /// All (key, values) pairs with `lo <= key <= hi`, in key order.
    pub fn range(&self, lo: &K, hi: &K) -> Vec<(&K, &[V])> {
        let mut out = Vec::new();
        self.collect_range(&self.root, lo, hi, &mut out);
        out
    }

    fn collect_range<'a>(
        &'a self,
        node: &'a Node<K, V>,
        lo: &K,
        hi: &K,
        out: &mut Vec<(&'a K, &'a [V])>,
    ) {
        match node {
            Node::Leaf { entries } => {
                for (k, vs) in entries {
                    if k >= lo && k <= hi {
                        out.push((k, vs.as_slice()));
                    }
                }
            }
            Node::Internal { keys, children } => {
                // Visit only children whose key range may intersect [lo, hi].
                for (i, child) in children.iter().enumerate() {
                    let lower_ok = i == 0 || keys[i - 1] <= *hi;
                    let upper_ok = i == keys.len() || keys[i] >= *lo;
                    if lower_ok && upper_ok {
                        self.collect_range(child, lo, hi, out);
                    }
                }
            }
        }
    }

    /// Iterate all (key, values) pairs in key order.
    pub fn iter(&self) -> Vec<(&K, &[V])> {
        let mut out = Vec::new();
        self.collect_all(&self.root, &mut out);
        out
    }

    fn collect_all<'a>(&'a self, node: &'a Node<K, V>, out: &mut Vec<(&'a K, &'a [V])>) {
        match node {
            Node::Leaf { entries } => {
                for (k, vs) in entries {
                    out.push((k, vs.as_slice()));
                }
            }
            Node::Internal { children, .. } => {
                for c in children {
                    self.collect_all(c, out);
                }
            }
        }
    }

    /// Number of levels (`nblevels` of Figure 5): 1 for a lone leaf.
    pub fn nblevels(&self) -> u32 {
        let mut levels = 1;
        let mut node = &self.root;
        while let Node::Internal { children, .. } = node {
            levels += 1;
            node = &children[0];
        }
        levels
    }

    /// Number of leaves (`nbleaves` of Figure 5).
    pub fn nbleaves(&self) -> u32 {
        fn count<K, V>(node: &Node<K, V>) -> u32 {
            match node {
                Node::Leaf { .. } => 1,
                Node::Internal { children, .. } => children.iter().map(count).sum(),
            }
        }
        count(&self.root)
    }

    /// Structural invariant check (used by property tests): keys sorted in
    /// every node, children count = keys + 1, separators bound subtrees.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn check<K: Ord + Clone + Debug, V>(
            node: &Node<K, V>,
            lo: Option<&K>,
            hi: Option<&K>,
            order: usize,
            depth: usize,
            leaf_depth: &mut Option<usize>,
        ) -> Result<(), String> {
            match node {
                Node::Leaf { entries } => {
                    if entries.len() > order {
                        return Err(format!("leaf overfull: {}", entries.len()));
                    }
                    for w in entries.windows(2) {
                        if w[0].0 >= w[1].0 {
                            return Err("leaf keys not strictly sorted".into());
                        }
                    }
                    for (k, vs) in entries {
                        if vs.is_empty() {
                            return Err("empty value bucket".into());
                        }
                        if let Some(lo) = lo {
                            if k < lo {
                                return Err(format!("key {k:?} below bound {lo:?}"));
                            }
                        }
                        if let Some(hi) = hi {
                            if k >= hi {
                                return Err(format!("key {k:?} not below bound {hi:?}"));
                            }
                        }
                    }
                    match leaf_depth {
                        None => *leaf_depth = Some(depth),
                        Some(d) if *d != depth => return Err("leaves at different depths".into()),
                        _ => {}
                    }
                    Ok(())
                }
                Node::Internal { keys, children } => {
                    if children.len() != keys.len() + 1 {
                        return Err("children != keys + 1".into());
                    }
                    if children.len() > order {
                        return Err("internal overfull".into());
                    }
                    for w in keys.windows(2) {
                        if w[0] >= w[1] {
                            return Err("internal keys not sorted".into());
                        }
                    }
                    for (i, child) in children.iter().enumerate() {
                        let clo = if i == 0 { lo } else { Some(&keys[i - 1]) };
                        let chi = if i == keys.len() { hi } else { Some(&keys[i]) };
                        check(child, clo, chi, order, depth + 1, leaf_depth)?;
                    }
                    Ok(())
                }
            }
        }
        let mut leaf_depth = None;
        check(&self.root, None, None, self.order, 0, &mut leaf_depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_small() {
        let mut t = BPlusTree::new(4);
        for k in [5, 1, 9, 3, 7] {
            t.insert(k, k * 10);
        }
        assert_eq!(t.get(&3), Some(&[30][..]));
        assert_eq!(t.get(&4), None);
        assert_eq!(t.len(), 5);
        assert_eq!(t.distinct_keys(), 5);
        t.check_invariants().unwrap();
    }

    #[test]
    fn duplicates_accumulate() {
        let mut t = BPlusTree::new(4);
        t.insert("a", 1);
        t.insert("a", 2);
        t.insert("b", 3);
        assert_eq!(t.get(&"a"), Some(&[1, 2][..]));
        assert_eq!(t.len(), 3);
        assert_eq!(t.distinct_keys(), 2);
    }

    #[test]
    fn splits_grow_levels_and_leaves() {
        let mut t = BPlusTree::new(4);
        assert_eq!(t.nblevels(), 1);
        for k in 0..1000 {
            t.insert(k, k);
        }
        t.check_invariants().unwrap();
        assert!(t.nblevels() >= 4, "1000 keys at order 4 must be deep");
        assert!(t.nbleaves() >= 250);
        for k in 0..1000 {
            assert_eq!(t.get(&k), Some(&[k][..]), "key {k}");
        }
    }

    #[test]
    fn range_query_matches_filter() {
        let mut t = BPlusTree::new(6);
        for k in (0..100).rev() {
            t.insert(k, k);
        }
        let r = t.range(&10, &20);
        let keys: Vec<i32> = r.iter().map(|(k, _)| **k).collect();
        assert_eq!(keys, (10..=20).collect::<Vec<_>>());
        assert!(t.range(&200, &300).is_empty());
        assert_eq!(t.range(&-5, &0).len(), 1);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut t = BPlusTree::new(5);
        for k in [9, 2, 7, 4, 1, 8, 3] {
            t.insert(k, ());
        }
        let keys: Vec<i32> = t.iter().iter().map(|(k, _)| **k).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 7, 8, 9]);
    }
}
