//! Selection indices: B+-trees on one attribute of one class extension.

use oorq_schema::{AttrId, ClassId};
use oorq_storage::{Database, IndexId, IndexKindDesc, IndexStats, Oid, Value};

use crate::btree::BPlusTree;

/// A B+-tree selection index on `class.attr`, mapping attribute values to
/// the oids of the objects holding them. For collection-valued attributes
/// each member is indexed.
#[derive(Debug)]
pub struct SelectionIndex {
    /// Registered descriptor id in the physical schema.
    pub id: IndexId,
    /// Indexed class.
    pub class: ClassId,
    /// Indexed attribute.
    pub attr: AttrId,
    tree: BPlusTree<Value, Oid>,
}

impl SelectionIndex {
    /// Build the index by scanning the class extension (bulk load, no I/O
    /// accounting) and register its descriptor in the physical schema.
    pub fn build(db: &mut Database, class: ClassId, attr: AttrId) -> Self {
        let mut tree = BPlusTree::with_default_order();
        let entities: Vec<_> = db.physical().entities_of_class(class).to_vec();
        for entity in entities {
            for row in db.scan_raw(entity) {
                let oid = Oid::new(class, row.key);
                // Fragments may not hold the attribute; read through the
                // database to assemble correctly.
                if let Ok(v) = db.read_attr_raw(oid, attr) {
                    for m in v.members() {
                        tree.insert(m.clone(), oid);
                    }
                }
            }
        }
        let stats = IndexStats {
            nblevels: tree.nblevels(),
            nbleaves: tree.nbleaves(),
        };
        let id = db
            .physical_mut()
            .add_index(IndexKindDesc::Selection { class, attr }, stats);
        SelectionIndex {
            id,
            class,
            attr,
            tree,
        }
    }

    /// Oids whose attribute equals `key`. Charges `nblevels` index page
    /// reads to the database.
    pub fn probe(&self, db: &Database, key: &Value) -> Vec<Oid> {
        db.note_index_reads(self.tree.nblevels() as u64);
        self.tree.get(key).map(|s| s.to_vec()).unwrap_or_default()
    }

    /// Oids whose attribute lies in `[lo, hi]`. Charges `nblevels` plus
    /// one read per leaf entry range touched.
    pub fn probe_range(&self, db: &Database, lo: &Value, hi: &Value) -> Vec<Oid> {
        let hits = self.tree.range(lo, hi);
        let leaves_touched = (hits.len() as u64).div_ceil(8).max(1);
        db.note_index_reads(self.tree.nblevels() as u64 + leaves_touched - 1);
        hits.into_iter()
            .flat_map(|(_, vs)| vs.iter().copied())
            .collect()
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.tree.distinct_keys()
    }

    /// Index statistics.
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            nblevels: self.tree.nblevels(),
            nbleaves: self.tree.nbleaves(),
        }
    }
}
