//! Index tests over a small music-like database, plus B+-tree property
//! tests against a `BTreeMap` oracle.

use std::sync::Arc;

use oorq_prng::Prng;
use oorq_schema::{AttributeDef, Catalog, ClassDef, SchemaBuilder, TypeExpr};
use oorq_storage::{Database, Oid, StorageConfig, Value};

use crate::btree::BPlusTree;
use crate::{IndexSet, PathIndex, SelectionIndex};

fn catalog() -> Arc<Catalog> {
    Arc::new(
        SchemaBuilder::new()
            .class(
                ClassDef::new("Composer")
                    .attr(AttributeDef::stored("name", TypeExpr::text()))
                    .attr(AttributeDef::stored(
                        "works",
                        TypeExpr::set(TypeExpr::class("Composition")),
                    )),
            )
            .class(
                ClassDef::new("Composition")
                    .attr(AttributeDef::stored("title", TypeExpr::text()))
                    .attr(AttributeDef::stored(
                        "instruments",
                        TypeExpr::set(TypeExpr::class("Instrument")),
                    )),
            )
            .class(ClassDef::new("Instrument").attr(AttributeDef::stored("name", TypeExpr::text())))
            .build()
            .unwrap(),
    )
}

/// Build a tiny database: `n` composers, 2 works each, each work using 2
/// instruments out of a pool of 4.
fn music_db(n: u32) -> Database {
    let cat = catalog();
    let mut db = Database::new(cat, StorageConfig::default());
    let composer = db.catalog().class_by_name("Composer").unwrap();
    let composition = db.catalog().class_by_name("Composition").unwrap();
    let instrument = db.catalog().class_by_name("Instrument").unwrap();
    let pool: Vec<Oid> = ["harpsichord", "flute", "violin", "organ"]
        .iter()
        .map(|i| db.insert_object(instrument, vec![Value::text(*i)]).unwrap())
        .collect();
    for c in 0..n {
        let mut works = Vec::new();
        for w in 0..2u32 {
            let insts = vec![
                Value::Oid(pool[(c as usize + w as usize) % 4]),
                Value::Oid(pool[(c as usize + w as usize + 1) % 4]),
            ];
            let comp = db
                .insert_object(
                    composition,
                    vec![Value::text(format!("op{c}-{w}")), Value::Set(insts)],
                )
                .unwrap();
            works.push(Value::Oid(comp));
        }
        db.insert_object(
            composer,
            vec![Value::text(format!("c{c}")), Value::Set(works)],
        )
        .unwrap();
    }
    db
}

#[test]
fn selection_index_probe_matches_scan() {
    let mut db = music_db(20);
    let composer = db.catalog().class_by_name("Composer").unwrap();
    let (name_attr, _) = db.catalog().attr(composer, "name").unwrap();
    let idx = SelectionIndex::build(&mut db, composer, name_attr);
    assert_eq!(idx.distinct_keys(), 20);
    db.reset_io();
    let hits = idx.probe(&db, &Value::text("c7"));
    assert_eq!(hits.len(), 1);
    assert_eq!(
        db.read_attr_raw(hits[0], name_attr).unwrap(),
        Value::text("c7")
    );
    assert!(db.io_stats().index_reads >= 1, "probe charges index reads");
    assert!(idx.probe(&db, &Value::text("nobody")).is_empty());
}

#[test]
fn selection_index_on_collection_indexes_members() {
    let mut db = music_db(4);
    let composition = db.catalog().class_by_name("Composition").unwrap();
    let (instr_attr, _) = db.catalog().attr(composition, "instruments").unwrap();
    let idx = SelectionIndex::build(&mut db, composition, instr_attr);
    let instrument = db.catalog().class_by_name("Instrument").unwrap();
    let harpsichord = Oid::new(instrument, 0);
    let hits = idx.probe(&db, &Value::Oid(harpsichord));
    // Every hit's instrument set contains the harpsichord.
    assert!(!hits.is_empty());
    for h in &hits {
        let v = db.read_attr_raw(*h, instr_attr).unwrap();
        assert!(v.members().contains(&Value::Oid(harpsichord)));
    }
}

#[test]
fn selection_index_range_probe() {
    let mut db = music_db(10);
    let composer = db.catalog().class_by_name("Composer").unwrap();
    let (name_attr, _) = db.catalog().attr(composer, "name").unwrap();
    let idx = SelectionIndex::build(&mut db, composer, name_attr);
    let hits = idx.probe_range(&db, &Value::text("c2"), &Value::text("c5"));
    // c2, c3, c4, c5
    assert_eq!(hits.len(), 4);
}

#[test]
fn index_descriptor_registered_in_physical_schema() {
    let mut db = music_db(50);
    let composer = db.catalog().class_by_name("Composer").unwrap();
    let (name_attr, _) = db.catalog().attr(composer, "name").unwrap();
    let idx = SelectionIndex::build(&mut db, composer, name_attr);
    let desc = db.physical().selection_index(composer, name_attr).unwrap();
    assert_eq!(desc.id, idx.id);
    assert_eq!(desc.stats, idx.stats());
    assert!(desc.stats.nbleaves >= 1);
}

#[test]
fn path_index_matches_naive_traversal() {
    let mut db = music_db(12);
    let composer = db.catalog().class_by_name("Composer").unwrap();
    let composition = db.catalog().class_by_name("Composition").unwrap();
    let (works, _) = db.catalog().attr(composer, "works").unwrap();
    let (instruments, _) = db.catalog().attr(composition, "instruments").unwrap();
    // The paper's works.instruments path index.
    let pix = PathIndex::build(&mut db, vec![(composer, works), (composition, instruments)]);
    // 12 composers * 2 works * 2 instruments
    assert_eq!(pix.entry_count(), 48);
    for c in 0..12u32 {
        let head = Oid::new(composer, c);
        let tails = pix.probe(&db, head);
        assert_eq!(tails.len(), 4, "2 works x 2 instruments");
        // Naive traversal agrees.
        let mut naive = Vec::new();
        let wv = db.read_attr_raw(head, works).unwrap();
        for w in wv.members() {
            let w = w.as_oid().unwrap();
            let iv = db.read_attr_raw(w, instruments).unwrap();
            for i in iv.members() {
                naive.push(vec![w, i.as_oid().unwrap()]);
            }
        }
        let mut sorted_tails = tails.clone();
        sorted_tails.sort();
        naive.sort();
        assert_eq!(sorted_tails, naive);
        // probe_ends deduplicates instruments.
        let ends = pix.probe_ends(&db, head);
        assert!(ends.len() <= 4);
        let set: std::collections::HashSet<_> = ends.iter().collect();
        assert_eq!(set.len(), ends.len());
    }
    assert!(db.physical().path_index(&pix.path).is_some());
}

#[test]
fn join_index_is_single_step_path_index() {
    let mut db = music_db(5);
    let composer = db.catalog().class_by_name("Composer").unwrap();
    let (works, _) = db.catalog().attr(composer, "works").unwrap();
    let jix = PathIndex::join_index(&mut db, composer, works);
    assert_eq!(jix.entry_count(), 10); // 5 composers x 2 works
    let tails = jix.probe(&db, Oid::new(composer, 0));
    assert_eq!(tails.len(), 2);
    assert_eq!(tails[0].len(), 1);
}

#[test]
fn index_set_stores_and_finds() {
    let mut db = music_db(3);
    let composer = db.catalog().class_by_name("Composer").unwrap();
    let (name_attr, _) = db.catalog().attr(composer, "name").unwrap();
    let (works, _) = db.catalog().attr(composer, "works").unwrap();
    let mut set = IndexSet::new();
    let sid = set.add_selection(SelectionIndex::build(&mut db, composer, name_attr));
    let pid = set.add_path(PathIndex::join_index(&mut db, composer, works));
    assert!(set.selection(sid).is_some());
    assert!(set.path(pid).is_some());
    assert!(set.selection(pid).is_none());
}

/// B+-tree agrees with a BTreeMap oracle on random multimap inserts.
#[test]
fn btree_matches_oracle() {
    let mut rng = Prng::new(0x5eed_b7ee);
    for case in 0..64 {
        let order = 4 + rng.index(12);
        let n_ops = rng.index(400);
        let mut tree = BPlusTree::new(order);
        let mut oracle: std::collections::BTreeMap<i64, Vec<u32>> = Default::default();
        for _ in 0..n_ops {
            let k = rng.range_i64(0, 200);
            let v = rng.range_u32(0, 1000);
            tree.insert(k, v);
            oracle.entry(k).or_default().push(v);
        }
        tree.check_invariants().unwrap();
        assert_eq!(
            tree.len(),
            oracle.values().map(Vec::len).sum::<usize>(),
            "case {case} (order {order})"
        );
        assert_eq!(tree.distinct_keys(), oracle.len());
        for (k, vs) in &oracle {
            assert_eq!(tree.get(k), Some(vs.as_slice()));
        }
        // Full iteration is sorted and complete.
        let keys: Vec<i64> = tree.iter().iter().map(|(k, _)| **k).collect();
        let oracle_keys: Vec<i64> = oracle.keys().copied().collect();
        assert_eq!(keys, oracle_keys);
    }
}

/// Range queries agree with oracle filtering.
#[test]
fn btree_range_matches_oracle() {
    let mut rng = Prng::new(0x0ac1e5);
    for case in 0..64 {
        let lo = rng.range_i64(0, 100);
        let hi = lo + rng.range_i64(0, 40);
        let n_keys = rng.index(200);
        let mut tree = BPlusTree::new(5);
        let mut oracle: std::collections::BTreeMap<i64, Vec<i64>> = Default::default();
        for _ in 0..n_keys {
            let k = rng.range_i64(0, 100);
            tree.insert(k, k);
            oracle.entry(k).or_default().push(k);
        }
        let got: Vec<i64> = tree.range(&lo, &hi).iter().map(|(k, _)| **k).collect();
        let want: Vec<i64> = oracle.range(lo..=hi).map(|(k, _)| *k).collect();
        assert_eq!(got, want, "case {case} [{lo}, {hi}]");
    }
}

/// nblevels/nbleaves stay consistent with size.
#[test]
fn btree_shape_statistics() {
    let mut rng = Prng::new(0x5a9e5);
    for _ in 0..32 {
        let n = rng.index(600);
        let mut tree = BPlusTree::new(8);
        for k in 0..n {
            tree.insert(k, ());
        }
        tree.check_invariants().unwrap();
        let leaves = tree.nbleaves() as usize;
        // Each leaf holds at most `order` entries.
        assert!(leaves * 8 >= n.max(1));
        if n > 8 {
            assert!(tree.nblevels() >= 2);
        }
    }
}
