//! Access methods for OORQ: a from-scratch B+-tree, selection indices,
//! and Maier–Stein path indices (generalizing join indices).
//!
//! Index *descriptors* (existence + `nblevels`/`nbleaves` statistics)
//! live in the physical schema of [`oorq_storage`] so the optimizer and
//! cost model can reason about them; the concrete structures built here
//! are held in an [`IndexSet`] consumed by the execution engine.

mod btree;
mod path;
mod selection;

pub use btree::BPlusTree;
pub use path::PathIndex;
pub use selection::SelectionIndex;

use oorq_storage::IndexId;
use std::collections::HashMap;

/// The built index structures of a database, keyed by descriptor id.
#[derive(Debug, Default)]
pub struct IndexSet {
    selections: HashMap<IndexId, SelectionIndex>,
    paths: HashMap<IndexId, PathIndex>,
}

impl IndexSet {
    /// New empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a built selection index.
    pub fn add_selection(&mut self, idx: SelectionIndex) -> IndexId {
        let id = idx.id;
        self.selections.insert(id, idx);
        id
    }

    /// Register a built path index.
    pub fn add_path(&mut self, idx: PathIndex) -> IndexId {
        let id = idx.id;
        self.paths.insert(id, idx);
        id
    }

    /// Selection index by id.
    pub fn selection(&self, id: IndexId) -> Option<&SelectionIndex> {
        self.selections.get(&id)
    }

    /// Path index by id.
    pub fn path(&self, id: IndexId) -> Option<&PathIndex> {
        self.paths.get(&id)
    }
}

#[cfg(test)]
mod tests;
