//! The cost estimator: Figure 5's formulas generalized to arbitrary PTs
//! over the statistics of §3.2.
//!
//! The estimator predicts the behaviour of the pipelined executor in
//! `oorq-exec`: page I/O of scans, implicit-join dereferences (clustering
//! and buffer aware: a dereference stream whose target working set fits
//! in the buffer pays only its cold reads), path-index probes
//! (`‖C‖ · (nblevels + nbleaves/‖C₁‖)`), nested-loop rescans (buffer
//! aware), index-join probes, and semi-naive fixpoints
//! (`Σᵢ cost(Exp(Tᵢ))` with the iteration count bounded by the
//! chain-depth statistics; pages re-touched by iterations 2..n of a
//! buffer-resident recursive side are charged hot). The residency
//! discounts are gated on [`CostParams::residency`] — off in
//! [`CostParams::default`] and [`CostParams::paper_mode`] (Figure 5
//! verbatim), on in the calibrated snapshot where the observed
//! counters show buffer hits dominating the dereference residuals.
//!
//! Every per-node estimate is assembled as a [`CostFeatures`] vector
//! (sequential pages, dereference pages, index level/leaf accesses,
//! temporary writes, evaluations, method units) dotted with the
//! calibratable [`CostParams::weights`]; identity weights reproduce the
//! uncalibrated Figure 5 formulas exactly, and the feature vectors are
//! exported per node (`NodeCost::feat`) so the calibration harness can
//! fit the weights against observed counters without re-running the
//! estimator.

use std::collections::HashMap;

use oorq_pt::{AccessMethod, JoinAlgo, Pt};
use oorq_query::{CmpOp, Expr};
use oorq_schema::{AttrId, AttributeKind, Catalog, ClassId, ResolvedType};
use oorq_storage::{DbStats, EntitySource, IndexKindDesc, PhysicalSchema, WidthModel};

use crate::error::CostError;
use crate::features::{CostFeatures, OpKind};
use crate::guard::sane_rows;
use crate::params::{Cost, CostParams};

/// The modeled per-iteration delta curve of one fixpoint: what the
/// estimator assumed about the semi-naive iteration structure when it
/// costed the recursive side as `Σᵢ cost(Exp(Tᵢ))` (Figure 5). Either
/// derived from a fitted [`crate::FixProfile`] (`profiled`) or the
/// flat-delta fallback.
#[derive(Debug, Clone, PartialEq)]
pub struct FixCurve {
    /// The fixpoint's temporary.
    pub temp: String,
    /// The base case's estimated cardinality the curve was seeded from.
    pub base_rows: f64,
    /// Modeled recursive-side pass count (the executor's observed
    /// equivalent is the delta-curve length minus the seed entry).
    pub iterations: f64,
    /// Modeled per-pass input delta cardinalities, seed first.
    pub deltas: Vec<f64>,
    /// Modeled accumulator cardinality (the fixpoint's output rows).
    pub total_rows: f64,
    /// True when a fitted profile produced the curve; false for the
    /// flat-delta default.
    pub profiled: bool,
}

impl FixCurve {
    /// Total modeled delta mass (sum over the curve).
    pub fn mass(&self) -> f64 {
        self.deltas.iter().sum()
    }
}

/// Per-node cost line of a plan-cost breakdown.
#[derive(Debug, Clone)]
pub struct NodeCost {
    /// Short label of the node (operator + key detail).
    pub label: String,
    /// Operator kind (the residual-report grouping key).
    pub kind: OpKind,
    /// Pre-order index of the PT node this line estimates (the
    /// numbering of `oorq_pt::node_ids`, shared with the physical
    /// plan's `OpMeta::pt_node`) — the join key for predicted-vs-
    /// observed per-operator reporting.
    pub node: Option<usize>,
    /// The node's own cost (excluding children).
    pub cost: Cost,
    /// The node's own feature vector (`cost` is `feat` dotted with the
    /// model's weights). For nodes on the recursive side of a fixpoint
    /// the features are already multiplied by the estimated iteration
    /// count, matching the executor's per-operator counters which
    /// accumulate across iterations.
    pub feat: CostFeatures,
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated output pages if materialized.
    pub pages: f64,
    /// For `Fix` lines: the modeled delta curve behind the estimate
    /// (feedback harness and drift lints join it against the observed
    /// curve). `None` for every other operator.
    pub fix: Option<FixCurve>,
}

/// The cost estimate of a whole plan.
#[derive(Debug, Clone)]
pub struct PlanCost {
    /// Total cost.
    pub cost: Cost,
    /// Estimated answer cardinality.
    pub rows: f64,
    /// Post-order per-node breakdown.
    pub breakdown: Vec<NodeCost>,
}

impl PlanCost {
    /// Weighted total.
    pub fn total(&self, params: &CostParams) -> f64 {
        self.cost.total(params)
    }
}

/// Column provenance tracked during estimation.
#[derive(Debug, Clone)]
struct ColInfo {
    ty: ResolvedType,
    /// True when direct attribute reads on this column cost no I/O (the
    /// object's page is in hand at that point of the pipeline).
    resident: bool,
}

/// Snapshot taken when a fan-out operator (IJ/PIJ) multiplies the row
/// count: remembers the pre-fanout columns and cardinality so a later
/// projection back onto those columns can estimate the *existential*
/// row count (`rows_before * (1 - (1 - sel)^mult)`, independence
/// assumption) instead of keeping the multiplied one.
#[derive(Debug, Clone)]
struct FanoutBase {
    cols: Vec<String>,
    rows: f64,
    mult: f64,
    sel: f64,
}

#[derive(Debug, Clone)]
struct NodeEst {
    rows: f64,
    pages: f64,
    cols: HashMap<String, ColInfo>,
    cost: Cost,
    fanout_base: Option<FanoutBase>,
}

/// Per-row access cost of evaluating an expression, split by component
/// so each lands in its own calibratable feature.
#[derive(Debug, Clone, Default)]
struct ExprCost {
    /// Object pages fetched dereferencing paths.
    io: f64,
    /// Predicate comparisons.
    evals: f64,
    /// Method cost units (declared `eval_cost` per invocation).
    method_units: f64,
    /// Cold pages of the entities dereferenced along paths — the
    /// working set a stream of such dereferences touches, with entities
    /// already resident from earlier in the plan contributing nothing.
    /// When it fits in the buffer, repeated fetches hit: the
    /// operator-level I/O is capped at the footprint (cold reads)
    /// instead of one page per dereference.
    footprint: f64,
    /// Entities whose objects the expression dereferences (so a stream
    /// that visits the whole working set can mark them resident).
    touched: Vec<oorq_storage::EntityId>,
}

impl ExprCost {
    fn absorb(&mut self, other: ExprCost) {
        self.io += other.io;
        self.evals += other.evals;
        self.method_units += other.method_units;
        self.footprint += other.footprint;
        self.touched.extend(other.touched);
    }
}

/// The cost model: catalog + physical schema + statistics + parameters.
pub struct CostModel<'a> {
    /// Conceptual catalog.
    pub catalog: &'a Catalog,
    /// Physical schema (entities, clustering, indexes).
    pub physical: &'a PhysicalSchema,
    /// Database statistics.
    pub stats: &'a DbStats,
    /// Model parameters.
    pub params: CostParams,
    /// Width model for page estimates of intermediate results.
    pub width: WidthModel,
    /// Shapes of temporaries (qualified by PT `Temp` names).
    pub temp_fields: HashMap<String, Vec<(String, ResolvedType)>>,
    /// Assumed cardinality of temporaries referenced *outside* a `Fix`
    /// that builds them (e.g. while planning the recursive side of a
    /// fixpoint in isolation).
    pub temp_rows_hint: HashMap<String, f64>,
}

impl<'a> CostModel<'a> {
    /// New model with default width.
    pub fn new(
        catalog: &'a Catalog,
        physical: &'a PhysicalSchema,
        stats: &'a DbStats,
        params: CostParams,
    ) -> Self {
        CostModel {
            catalog,
            physical,
            stats,
            params,
            width: WidthModel::default(),
            temp_fields: HashMap::new(),
            temp_rows_hint: HashMap::new(),
        }
    }

    /// Assume a cardinality for a temporary when no fixpoint context
    /// provides one.
    pub fn hint_temp_rows(&mut self, name: impl Into<String>, rows: f64) {
        self.temp_rows_hint.insert(name.into(), rows);
    }

    /// Register a temporary's shape.
    pub fn with_temp(
        mut self,
        name: impl Into<String>,
        fields: Vec<(String, ResolvedType)>,
    ) -> Self {
        self.temp_fields.insert(name.into(), fields);
        self
    }

    /// Estimate the cost of a whole plan.
    pub fn cost(&self, pt: &Pt) -> Result<PlanCost, CostError> {
        // Under residency modeling, an entity that some operator of this
        // plan scans in full (and that fits in the buffer) is resident
        // for every *other* access: the scan pays the cold reads — a
        // canonical attribution independent of operator order, matching
        // the executor's buffer whichever branch runs first. Entity
        // leaves accessed through an index are not scans.
        let mut scan_resident = std::collections::HashSet::new();
        if self.params.residency && self.params.buffer_frames > 0 {
            let b = self.params.buffer_frames as f64;
            let mut scanned: Vec<(*const Pt, oorq_storage::EntityId)> = Vec::new();
            let mut via_index: std::collections::HashSet<*const Pt> = Default::default();
            pt.visit(&mut |n| match n {
                Pt::Entity { id, .. } => scanned.push((n as *const Pt, *id)),
                Pt::Sel {
                    method: AccessMethod::Index(_),
                    input,
                    ..
                } => {
                    via_index.insert(input.as_ref() as *const Pt);
                }
                _ => {}
            });
            for (ptr, id) in scanned {
                if via_index.contains(&ptr) {
                    continue;
                }
                let (_, pages) = self.entity_rows_pages(id);
                if pages > 0.0 && pages <= b {
                    scan_resident.insert(id);
                }
            }
        }
        let mut ctx = EstCtx {
            model: self,
            temp_rows: HashMap::new(),
            breakdown: Vec::new(),
            node_ids: oorq_pt::node_ids(pt),
            hot: std::collections::HashSet::new(),
            scan_resident,
        };
        let est = ctx.est(pt, true)?;
        Ok(PlanCost {
            cost: est.cost,
            rows: est.rows,
            breakdown: ctx.breakdown,
        })
    }

    /// Estimated iteration count for fixpoints: the deepest chain in the
    /// statistics, or the configured default.
    pub fn fix_iterations(&self) -> f64 {
        self.stats
            .max_chain_depth()
            .map(|d| (d as f64).max(1.0))
            .unwrap_or(self.params.default_fix_iterations)
    }

    /// Model the per-iteration delta curve of a fixpoint over `temp`
    /// whose base case is estimated at `base_rows`. With a fitted
    /// profile ([`crate::FixProfiles::lookup`]) the curve is
    /// geometric — seed scaled off the base estimate, per-pass decay,
    /// pass count extrapolated from the chain-depth statistic;
    /// without one it falls back to the flat-delta default (total =
    /// base × avg chain depth, split evenly over the iterations).
    pub fn fix_delta_curve(&self, temp: &str, base_rows: f64) -> FixCurve {
        if let Some(prof) = self
            .params
            .fix_profiles
            .lookup(&self.params.profile_scope, temp)
        {
            let depth = self.fix_iterations();
            let passes = ((prof.iters_per_depth * depth).round().max(1.0)) as usize;
            let d0 = (base_rows * prof.seed_scale).max(1.0);
            let mut deltas = Vec::with_capacity(passes);
            let mut d = d0;
            for _ in 0..passes {
                deltas.push(d.max(1.0));
                d *= prof.decay;
            }
            // The geometric endpoints-fit matches the curve's extremes
            // but not necessarily its area: a linearly decaying frontier
            // sums to far more than its geometric interpolation. When
            // the profile recorded its mass-over-seed ratio, rescale the
            // reconstruction so the total transfers exactly — the
            // accumulator footprint (hence the spill-cliff side) rides
            // on the total, not the endpoints.
            if prof.mass_scale > 0.0 {
                let sum: f64 = deltas.iter().sum();
                let target = d0 * prof.mass_scale;
                if sum > 0.0 && target > 0.0 {
                    let f = target / sum;
                    for d in &mut deltas {
                        *d *= f;
                    }
                }
            }
            let total_rows = sane_rows(deltas.iter().sum()).max(1.0);
            FixCurve {
                temp: temp.to_string(),
                base_rows,
                iterations: passes as f64,
                deltas,
                total_rows,
                profiled: true,
            }
        } else {
            let n = self.fix_iterations().max(1.0);
            let growth = self.stats.avg_chain_depth().unwrap_or(2.0).max(1.0);
            let total_rows = sane_rows(base_rows * growth);
            let delta = (total_rows / n).max(1.0);
            let passes = ((n - 1.0).max(1.0).round()) as usize;
            FixCurve {
                temp: temp.to_string(),
                base_rows,
                iterations: passes as f64,
                deltas: vec![delta; passes],
                total_rows,
                profiled: false,
            }
        }
    }

    fn entity_rows_pages(&self, id: oorq_storage::EntityId) -> (f64, f64) {
        match self.stats.entity(id) {
            Some(s) => (s.cardinality as f64, s.pages as f64),
            None => (0.0, 0.0),
        }
    }

    /// Fan-out (average members, discounted by nulls) of an attribute.
    fn attr_fanout(&self, class: ClassId, attr: AttrId) -> f64 {
        let Some(&entity) = self.physical.entities_of_class(class).first() else {
            return 1.0;
        };
        match self
            .stats
            .entity(entity)
            .and_then(|s| s.attrs.get(attr.0 as usize))
        {
            Some(a) => (a.avg_fanout * (1.0 - a.null_fraction)).max(0.0),
            None => 1.0,
        }
    }

    /// Distinct values of an attribute (for equality selectivity).
    fn attr_distinct(&self, class: ClassId, attr: AttrId) -> f64 {
        let Some(&entity) = self.physical.entities_of_class(class).first() else {
            return 10.0;
        };
        match self
            .stats
            .entity(entity)
            .and_then(|s| s.attrs.get(attr.0 as usize))
        {
            Some(a) if a.distinct > 0 => a.distinct as f64,
            _ => 10.0,
        }
    }

    /// Pages of the (first) entity extending a class; `+∞` when unknown
    /// so buffer-residency caps never apply to unsized targets.
    fn class_pages(&self, class: ClassId) -> f64 {
        self.physical
            .entities_of_class(class)
            .first()
            .and_then(|&e| self.stats.entity(e))
            .map(|s| s.pages as f64)
            .unwrap_or(f64::INFINITY)
    }

    fn is_clustered(&self, class: ClassId, attr: AttrId) -> bool {
        self.physical
            .entities_of_class(class)
            .first()
            .map(|&e| self.physical.entity(e).is_clustered(attr))
            .unwrap_or(false)
    }
}

struct EstCtx<'m, 'a> {
    model: &'m CostModel<'a>,
    /// Cardinality assumed for each temporary (set while estimating the
    /// recursive side of a fixpoint: the delta size).
    temp_rows: HashMap<String, f64>,
    breakdown: Vec<NodeCost>,
    /// Pre-order indices of the estimated plan's nodes (join key shared
    /// with physical-plan lowering).
    node_ids: HashMap<*const Pt, usize>,
    /// Entities whose whole working set an earlier access of this plan
    /// already paged in (populated only under residency modeling):
    /// later scans and dereference streams into them are charged hot.
    /// Estimation visits operators in execution order, so the set
    /// mirrors the executor's buffer state.
    hot: std::collections::HashSet<oorq_storage::EntityId>,
    /// Entities some operator of this plan scans in full and that fit
    /// in the buffer (see [`CostModel::cost`]): the scan pays their
    /// cold reads, every other access is a buffer hit.
    scan_resident: std::collections::HashSet<oorq_storage::EntityId>,
}

impl EstCtx<'_, '_> {
    /// Page estimate of `rows` records of the given shape, guarded: a
    /// zero-row estimate occupies zero pages, a non-empty one at least
    /// one — no downstream division can see a spurious zero or a
    /// sub-row NaN.
    fn pages_est(&self, rows: f64, types: &[ResolvedType]) -> f64 {
        let rows = sane_rows(rows);
        if rows.ceil() as u64 == 0 {
            return 0.0;
        }
        (self.model.width.pages_for(rows.ceil() as u64, types) as f64).max(1.0)
    }

    /// Page cost of a stream of `total` random dereferences whose
    /// distinct target pages span `footprint` pages. Under residency
    /// modeling ([`CostParams::residency`]) a working set that fits in
    /// the buffer stays resident: only the cold reads pay — at most the
    /// footprint — and every further access hits. A working set larger
    /// than the buffer thrashes and every dereference pays, which is
    /// also the paper's §4.6 simplification (residency off).
    fn deref_stream(&self, total: f64, footprint: f64) -> f64 {
        let p = &self.model.params;
        let b = p.buffer_frames as f64;
        if p.residency && b > 0.0 && footprint <= b {
            total.min(footprint)
        } else {
            total
        }
    }

    /// Cold-read pages of `accesses` page accesses into entity `id`
    /// (`pages` total). Under residency modeling an already-hot entity
    /// costs nothing, and an access stream that visits the whole
    /// working set of a buffer-fitting entity marks it hot for the rest
    /// of the plan.
    fn entity_stream(&mut self, id: oorq_storage::EntityId, pages: f64, accesses: f64) -> f64 {
        let p = &self.model.params;
        let b = p.buffer_frames as f64;
        if !p.residency || b <= 0.0 || pages > b {
            return accesses;
        }
        if self.hot.contains(&id) {
            return 0.0;
        }
        let cold = accesses.min(pages);
        if cold >= pages {
            self.hot.insert(id);
        }
        cold
    }

    /// Page cost of fetching `accesses` objects of entity `id` by oid —
    /// an index-match fetch or an implicit-join target fetch. Free when
    /// the plan scans the entity in full anyway (the scan pays the cold
    /// reads, whichever branch the executor happens to run first);
    /// otherwise the ordinary cold-read accounting of
    /// [`EstCtx::entity_stream`].
    fn fetch_stream(&mut self, id: oorq_storage::EntityId, pages: f64, accesses: f64) -> f64 {
        if self.scan_resident.contains(&id) {
            return 0.0;
        }
        self.entity_stream(id, pages, accesses)
    }

    /// Operator-level page cost of evaluating `ec` once per each of `n`
    /// rows: the dereference stream is capped at its cold footprint,
    /// and a stream that visits every touched entity's working set
    /// marks them hot for the rest of the plan.
    fn expr_stream(&mut self, n: f64, ec: &ExprCost) -> f64 {
        let total = n * ec.io;
        let cold = self.deref_stream(total, ec.footprint);
        let p = &self.model.params;
        let b = p.buffer_frames as f64;
        if p.residency && b > 0.0 && ec.footprint <= b && total >= ec.footprint {
            self.hot.extend(ec.touched.iter().copied());
        }
        cold
    }

    /// Estimate a node. `charge_scan` is false for leaves accessed
    /// through an index (their sequential scan is replaced by probes).
    fn est(&mut self, pt: &Pt, charge_scan: bool) -> Result<NodeEst, CostError> {
        let m = self.model;
        let p = &m.params;
        let w = &p.weights;
        let est = match pt {
            Pt::Entity { id, var } => {
                let (rows, pages) = m.entity_rows_pages(*id);
                let desc = m.physical.entity(*id);
                let mut cols = HashMap::new();
                match &desc.source {
                    EntitySource::Class(c) => {
                        cols.insert(
                            var.clone(),
                            ColInfo {
                                ty: ResolvedType::Object(*c),
                                resident: true,
                            },
                        );
                    }
                    EntitySource::Relation(r) => {
                        for (n, t) in &m.catalog.relation(*r).fields {
                            cols.insert(
                                format!("{var}.{n}"),
                                ColInfo {
                                    ty: t.clone(),
                                    resident: false,
                                },
                            );
                        }
                    }
                    EntitySource::Temporary => {
                        return Err(CostError::TempAsEntity(desc.name.clone()))
                    }
                }
                let feat = CostFeatures {
                    seq_pages: if charge_scan {
                        self.entity_stream(*id, pages, pages)
                    } else {
                        0.0
                    },
                    ..CostFeatures::default()
                };
                let own = Cost::new(feat.io(w), feat.cpu(w));
                self.note(
                    pt,
                    OpKind::Scan,
                    format!("scan {}", desc.name),
                    feat,
                    own,
                    rows,
                    pages,
                );
                NodeEst {
                    rows,
                    pages,
                    cols,
                    cost: own,
                    fanout_base: None,
                }
            }
            Pt::Temp { name, var } => {
                let fields = m
                    .temp_fields
                    .get(name)
                    .ok_or_else(|| CostError::UnknownTemp(name.clone()))?;
                let rows = sane_rows(
                    self.temp_rows
                        .get(name)
                        .or_else(|| m.temp_rows_hint.get(name))
                        .copied()
                        .unwrap_or(0.0),
                );
                let types: Vec<ResolvedType> = fields.iter().map(|(_, t)| t.clone()).collect();
                let pages = self.pages_est(rows, &types);
                let mut cols = HashMap::new();
                for (n, t) in fields {
                    cols.insert(
                        format!("{var}.{n}"),
                        ColInfo {
                            ty: t.clone(),
                            resident: false,
                        },
                    );
                }
                // Under residency modeling a buffer-fitting temporary is
                // read hot: its pages are resident because this very plan
                // materialized them. Temporaries live under the breaker
                // memory budget, so the capacity is the budget-capped one.
                let bt = p.breaker_frames();
                let hot_temp = p.residency && bt > 0.0 && pages <= bt;
                let feat = CostFeatures {
                    seq_pages: if charge_scan && !hot_temp { pages } else { 0.0 },
                    ..CostFeatures::default()
                };
                let own = Cost::new(feat.io(w), feat.cpu(w));
                self.note(
                    pt,
                    OpKind::TempScan,
                    format!("scan temp {name}"),
                    feat,
                    own,
                    rows,
                    pages,
                );
                NodeEst {
                    rows,
                    pages,
                    cols,
                    cost: own,
                    fanout_base: None,
                }
            }
            Pt::Sel {
                pred,
                method,
                input,
            } => {
                match method {
                    AccessMethod::Scan => {
                        let mut child = self.est(input, true)?;
                        let ec = self.expr_access_cost(pred, &child.cols);
                        let sel = self.selectivity(pred, &child.cols);
                        let feat = CostFeatures {
                            deref_pages: self.expr_stream(child.rows, &ec),
                            evals: child.rows * ec.evals,
                            method_units: child.rows * ec.method_units,
                            ..CostFeatures::default()
                        };
                        let own = Cost::new(feat.io(w), feat.cpu(w));
                        child.cost += own;
                        child.rows = sane_rows(child.rows * sel);
                        child.pages = (child.pages * sel).max(child.rows.min(1.0));
                        if let Some(fb) = &mut child.fanout_base {
                            fb.sel *= sel;
                        }
                        self.note(
                            pt,
                            OpKind::Sel,
                            format!("Sel[{pred}]"),
                            feat,
                            own,
                            child.rows,
                            child.pages,
                        );
                        child
                    }
                    AccessMethod::Index(idx) => {
                        // Index access replaces the scan of the entity leaf.
                        let mut child = self.est(input, false)?;
                        let desc = m.physical.index(*idx);
                        let sel = self.selectivity(pred, &child.cols);
                        let matches = sane_rows(child.rows * sel);
                        // Fetch the matched objects' pages (free when the
                        // plan scans the entity anyway, else at most its
                        // pages when it fits in the buffer).
                        let fetch = match input.as_ref() {
                            Pt::Entity { id, .. } => self.fetch_stream(*id, child.pages, matches),
                            _ => self.deref_stream(matches, child.pages),
                        };
                        let feat = CostFeatures {
                            index_level_ios: desc.stats.nblevels as f64,
                            index_leaf_ios: (matches / 8.0).max(0.0),
                            deref_pages: fetch,
                            evals: matches,
                            ..CostFeatures::default()
                        };
                        let own = Cost::new(feat.io(w), feat.cpu(w));
                        child.cost += own;
                        child.rows = matches;
                        child.pages = (child.pages * sel).max(child.rows.min(1.0));
                        self.note(
                            pt,
                            OpKind::SelIdx,
                            format!("Sel^idx[{pred}]"),
                            feat,
                            own,
                            child.rows,
                            child.pages,
                        );
                        child
                    }
                }
            }
            Pt::Proj { cols, input } => {
                let child = self.est(input, true)?;
                // No per-column copy surcharge: the executor counts
                // evaluations only for comparisons and methods, and the
                // calibration residuals showed the old copy floor as a
                // pure phantom (predicted cpu, observed none).
                let mut ec_total = ExprCost::default();
                for (_, e) in cols {
                    ec_total.absorb(self.expr_access_cost(e, &child.cols));
                }
                let feat = CostFeatures {
                    deref_pages: self.expr_stream(child.rows, &ec_total),
                    evals: child.rows * ec_total.evals,
                    method_units: child.rows * ec_total.method_units,
                    ..CostFeatures::default()
                };
                let own = Cost::new(feat.io(w), feat.cpu(w));
                // Existential dedup: projecting back onto columns that
                // existed before a fan-out collapses the multiplied rows
                // (independence assumption over the fanned-out members).
                let mut out_rows = child.rows;
                if let Some(fb) = &child.fanout_base {
                    let mut sources: Vec<String> = Vec::new();
                    for (_, e) in cols {
                        for v in e.vars() {
                            sources.push(v);
                        }
                    }
                    if sources.iter().all(|v| fb.cols.contains(v)) {
                        let pass = 1.0 - (1.0 - fb.sel.clamp(0.0, 1.0)).powf(fb.mult.max(1.0));
                        out_rows = out_rows.min(fb.rows * pass.clamp(0.0, 1.0));
                    }
                }
                let out_rows = sane_rows(out_rows);
                let mut out_cols = HashMap::new();
                for (n, e) in cols {
                    let ty = self.expr_out_type(e, &child.cols);
                    out_cols.insert(
                        n.clone(),
                        ColInfo {
                            ty,
                            resident: false,
                        },
                    );
                }
                let types: Vec<ResolvedType> = out_cols.values().map(|c| c.ty.clone()).collect();
                let pages = self.pages_est(out_rows, &types);
                self.note(
                    pt,
                    OpKind::Proj,
                    "Proj".to_string(),
                    feat,
                    own,
                    out_rows,
                    pages,
                );
                NodeEst {
                    rows: out_rows,
                    pages,
                    cols: out_cols,
                    cost: child.cost + own,
                    fanout_base: None,
                }
            }
            Pt::IJ {
                on,
                step,
                out,
                input,
                target,
            } => {
                let child = self.est(input, true)?;
                let ec = self.expr_access_cost(on, &child.cols);
                let (fanout, clustered) = match step.class_attr {
                    Some((c, a)) => (m.attr_fanout(c, a).max(0.0), m.is_clustered(c, a)),
                    // Oid-valued relation/temporary field: scalar, never
                    // clustered with the consuming temporary.
                    None => (1.0, false),
                };
                let rows = sane_rows(child.rows * fanout.max(f64::MIN_POSITIVE));
                let per_deref = if clustered { p.clustered_access } else { 1.0 };
                let target_class = match target.as_ref() {
                    Pt::Entity { id, .. } => match m.physical.entity(*id).source {
                        EntitySource::Class(c) => Some(c),
                        _ => None,
                    },
                    _ => None,
                }
                .or_else(|| {
                    step.class_attr
                        .and_then(|(c, a)| m.catalog.attribute(c, a).ty.referenced_class())
                })
                .ok_or_else(|| CostError::Pt(oorq_pt::PtError::NotAReference(step.name.clone())))?;
                // Target dereferences are capped at the target entity's
                // cold pages when it fits in the buffer.
                let target_fetch = match m.physical.entities_of_class(target_class).first() {
                    Some(&e) => self.fetch_stream(e, m.class_pages(target_class), rows),
                    None => rows,
                };
                let feat = CostFeatures {
                    deref_pages: self.expr_stream(child.rows, &ec) + target_fetch * per_deref,
                    evals: child.rows * ec.evals,
                    method_units: child.rows * ec.method_units,
                    ..CostFeatures::default()
                };
                let own = Cost::new(feat.io(w), feat.cpu(w));
                let mut cols = child.cols.clone();
                cols.insert(
                    out.clone(),
                    ColInfo {
                        ty: ResolvedType::Object(target_class),
                        resident: true,
                    },
                );
                let types: Vec<ResolvedType> = cols.values().map(|c| c.ty.clone()).collect();
                let pages = self.pages_est(rows, &types);
                let fanout_base = Some(match child.fanout_base {
                    Some(fb) => FanoutBase {
                        mult: fb.mult * fanout.max(1.0),
                        ..fb
                    },
                    None => FanoutBase {
                        cols: child.cols.keys().cloned().collect(),
                        rows: child.rows,
                        mult: fanout.max(1.0),
                        sel: 1.0,
                    },
                });
                self.note(
                    pt,
                    OpKind::Ij,
                    format!("IJ_{}", step.name),
                    feat,
                    own,
                    rows,
                    pages,
                );
                NodeEst {
                    rows,
                    pages,
                    cols,
                    cost: child.cost + own,
                    fanout_base,
                }
            }
            Pt::PIJ {
                index,
                on,
                outs,
                input,
                ..
            } => {
                let child = self.est(input, true)?;
                let desc = m.physical.index(*index);
                let IndexKindDesc::Path { path } = desc.kind.clone() else {
                    return Err(CostError::Pt(oorq_pt::PtError::NotAPathIndex));
                };
                let head_class = path[0].0;
                let head_entity = m
                    .physical
                    .entities_of_class(head_class)
                    .first()
                    .copied()
                    .ok_or(CostError::MissingStats)?;
                let head_card = m
                    .stats
                    .entity(head_entity)
                    .map(|s| s.cardinality as f64)
                    .unwrap_or(1.0)
                    .max(1.0);
                let ec = self.expr_access_cost(on, &child.cols);
                let mut fan = 1.0;
                for (c, a) in &path {
                    fan *= m.attr_fanout(*c, *a).max(f64::MIN_POSITIVE);
                }
                let rows = sane_rows(child.rows * fan);
                // Figure 5: ‖C‖ * (nblevels + nbleaves / ‖C₁‖).
                let feat = CostFeatures {
                    deref_pages: self.expr_stream(child.rows, &ec),
                    index_level_ios: child.rows * desc.stats.nblevels as f64,
                    index_leaf_ios: child.rows * desc.stats.nbleaves as f64 / head_card,
                    evals: child.rows * ec.evals,
                    method_units: child.rows * ec.method_units,
                    ..CostFeatures::default()
                };
                let own = Cost::new(feat.io(w), feat.cpu(w));
                let mut cols = child.cols.clone();
                for (i, outn) in outs.iter().enumerate() {
                    let (c, a) = path[i];
                    let attr = m.catalog.attribute(c, a);
                    if let Some(tc) = attr.ty.referenced_class() {
                        cols.insert(
                            outn.clone(),
                            // Index-only: the objects' pages are NOT read.
                            ColInfo {
                                ty: ResolvedType::Object(tc),
                                resident: false,
                            },
                        );
                    }
                }
                let types: Vec<ResolvedType> = cols.values().map(|c| c.ty.clone()).collect();
                let pages = self.pages_est(rows, &types);
                let fanout_base = Some(match child.fanout_base {
                    Some(fb) => FanoutBase {
                        mult: fb.mult * fan.max(1.0),
                        ..fb
                    },
                    None => FanoutBase {
                        cols: child.cols.keys().cloned().collect(),
                        rows: child.rows,
                        mult: fan.max(1.0),
                        sel: 1.0,
                    },
                });
                self.note(
                    pt,
                    OpKind::Pij,
                    format!("PIJ_{}", desc.display_name(m.catalog)),
                    feat,
                    own,
                    rows,
                    pages,
                );
                NodeEst {
                    rows,
                    pages,
                    cols,
                    cost: child.cost + own,
                    fanout_base,
                }
            }
            Pt::EJ {
                pred,
                algo,
                left,
                right,
            } => {
                let l = self.est(left, true)?;
                match algo {
                    JoinAlgo::NestedLoop => {
                        let r = self.est(right, true)?;
                        let mut cols = l.cols.clone();
                        for (k, v) in &r.cols {
                            cols.insert(k.clone(), v.clone());
                        }
                        let sel = self.selectivity(pred, &cols);
                        let rows = sane_rows(l.rows * r.rows * sel);
                        // Inner rescans. A rescannable (leaf-ish) inner is
                        // re-opened through the buffer: free when it fits
                        // the buffer, a full rescan per outer row past it.
                        // A non-rescannable inner is materialized into a
                        // page-store temporary under the breaker memory
                        // budget: the build writes its pages once, and
                        // every outer row rescans the temporary — hot
                        // while it fits the budget-capped capacity, full
                        // page re-reads once spilled. The materialization
                        // terms are residency-gated so the symbolic §4.6
                        // model keeps its shape.
                        let bt = p.breaker_frames();
                        let mat = p.residency && !pt_rescannable(right);
                        let mat_writes = if mat { r.pages } else { 0.0 };
                        let cap = if mat { bt } else { p.buffer_frames as f64 };
                        let rescan_io = if r.pages <= cap {
                            0.0
                        } else if mat {
                            l.rows * r.pages
                        } else {
                            (l.rows - 1.0).max(0.0) * r.pages
                        };
                        let ec = self.expr_access_cost(pred, &cols);
                        let pairs = l.rows * r.rows;
                        let feat = CostFeatures {
                            seq_pages: rescan_io,
                            deref_pages: self.expr_stream(pairs, &ec),
                            write_pages: mat_writes,
                            evals: pairs * ec.evals.max(1.0),
                            method_units: pairs * ec.method_units,
                            ..CostFeatures::default()
                        };
                        let own = Cost::new(feat.io(w), feat.cpu(w));
                        let types: Vec<ResolvedType> =
                            cols.values().map(|c| c.ty.clone()).collect();
                        let pages = self.pages_est(rows, &types);
                        self.note(
                            pt,
                            OpKind::Ej,
                            format!("EJ[{pred}]"),
                            feat,
                            own,
                            rows,
                            pages,
                        );
                        NodeEst {
                            rows,
                            pages,
                            cols,
                            cost: l.cost + r.cost + own,
                            fanout_base: None,
                        }
                    }
                    JoinAlgo::IndexJoin(idx) => {
                        let r = self.est(right, false)?;
                        let desc = m.physical.index(*idx);
                        let mut cols = l.cols.clone();
                        for (k, v) in &r.cols {
                            cols.insert(k.clone(), v.clone());
                        }
                        let sel = self.selectivity(pred, &cols);
                        let rows = sane_rows(l.rows * r.rows * sel);
                        let matches_per_probe = (r.rows * sel * l.rows).max(0.0) / l.rows.max(1.0);
                        let feat = CostFeatures {
                            index_level_ios: l.rows * desc.stats.nblevels as f64,
                            index_leaf_ios: l.rows * matches_per_probe,
                            evals: rows.max(l.rows),
                            ..CostFeatures::default()
                        };
                        let own = Cost::new(feat.io(w), feat.cpu(w));
                        let types: Vec<ResolvedType> =
                            cols.values().map(|c| c.ty.clone()).collect();
                        let pages = self.pages_est(rows, &types);
                        self.note(
                            pt,
                            OpKind::EjIdx,
                            format!("EJ^idx[{pred}]"),
                            feat,
                            own,
                            rows,
                            pages,
                        );
                        NodeEst {
                            rows,
                            pages,
                            cols,
                            cost: l.cost + r.cost + own,
                            fanout_base: None,
                        }
                    }
                }
            }
            Pt::Union { left, right } => {
                let l = self.est(left, true)?;
                let r = self.est(right, true)?;
                let rows = l.rows + r.rows;
                self.note(
                    pt,
                    OpKind::Union,
                    "Union".to_string(),
                    CostFeatures::default(),
                    Cost::zero(),
                    rows,
                    l.pages + r.pages,
                );
                NodeEst {
                    rows,
                    pages: l.pages + r.pages,
                    cols: l.cols,
                    cost: l.cost + r.cost,
                    fanout_base: None,
                }
            }
            Pt::Fix { temp, body } => {
                let Pt::Union { left, right } = body.as_ref() else {
                    return Err(CostError::Pt(oorq_pt::PtError::FixBodyNotUnion));
                };
                let (base, rec) = if left.references_temp(temp) {
                    (right.as_ref(), left.as_ref())
                } else {
                    (left.as_ref(), right.as_ref())
                };
                if !rec.references_temp(temp) {
                    return Err(CostError::NotRecursive(temp.clone()));
                }
                let base_est = self.est(base, true)?;
                // Model the per-iteration delta curve — a fitted profile
                // when one exists, the flat-delta fallback otherwise —
                // and estimate the recursive side once per modeled pass
                // with that pass's delta as the temp's cardinality
                // (Figure 5's Σᵢ cost(Exp(Tᵢ)), per-iteration volumes
                // and all).
                let curve = m.fix_delta_curve(temp, base_est.rows);
                let total_rows = curve.total_rows;
                let saved = self
                    .temp_rows
                    .insert(temp.clone(), curve.deltas.first().copied().unwrap_or(1.0));
                let rec_mark = self.breakdown.len();
                self.est(rec, true)?;
                let first_len = self.breakdown.len() - rec_mark;
                // The executor's per-operator counters accumulate across
                // iterations, so later passes fold into the first pass's
                // breakdown lines (positional: the same subtree produces
                // the same line sequence each pass). Under residency
                // modeling the page features are buffer aware: a per-pass
                // page footprint that fits in the buffer is re-touched
                // hot on passes 2..n, so only the first pass pays cold
                // reads; CPU work and index probes repeat in full.
                // Sequential pages of temp-backed lines (delta scans,
                // materialized join inners, nested fixpoints) live under
                // the breaker memory budget, so their hot/cold cut is the
                // budget-capped capacity; base-entity pages use the full
                // buffer.
                let (b_base, b_temp) = if p.residency {
                    (p.buffer_frames as f64, p.breaker_frames())
                } else {
                    (0.0, 0.0)
                };
                let first_pages: Vec<(f64, f64, f64)> = self.breakdown[rec_mark..]
                    .iter()
                    .map(|l| {
                        let b_seq = match l.kind {
                            OpKind::TempScan | OpKind::Ej | OpKind::Fix => b_temp,
                            _ => b_base,
                        };
                        (l.feat.seq_pages, l.feat.deref_pages, b_seq)
                    })
                    .collect();
                for d in &curve.deltas[1..] {
                    self.temp_rows.insert(temp.clone(), *d);
                    let pass_mark = self.breakdown.len();
                    self.est(rec, true)?;
                    debug_assert_eq!(
                        self.breakdown.len() - pass_mark,
                        first_len,
                        "recursive side must produce the same line sequence each pass"
                    );
                    for (i, &(first_seq, first_deref, b_seq)) in first_pages.iter().enumerate() {
                        let src = self.breakdown[pass_mark + i].clone();
                        let mut add = src.feat;
                        if b_seq > 0.0 && first_seq <= b_seq {
                            add.seq_pages = 0.0;
                        }
                        if b_base > 0.0 && first_deref <= b_base {
                            add.deref_pages = 0.0;
                        }
                        let dst = &mut self.breakdown[rec_mark + i];
                        dst.feat += add;
                        dst.rows += src.rows;
                        dst.pages += src.pages;
                    }
                    self.breakdown.truncate(pass_mark);
                }
                match saved {
                    Some(s) => {
                        self.temp_rows.insert(temp.clone(), s);
                    }
                    None => {
                        self.temp_rows.remove(temp);
                    }
                }
                for line in &mut self.breakdown[rec_mark..] {
                    line.cost = Cost::new(line.feat.io(w), line.feat.cpu(w));
                }
                let iter_cost = self.breakdown[rec_mark..]
                    .iter()
                    .fold(Cost::zero(), |acc, l| acc + l.cost);
                // Materialization writes of the accumulated temporary.
                let fields = m
                    .temp_fields
                    .get(temp)
                    .ok_or_else(|| CostError::UnknownTemp(temp.clone()))?;
                let types: Vec<ResolvedType> = fields.iter().map(|(_, t)| t.clone()).collect();
                let total_pages = self.pages_est(total_rows, &types);
                // The materialization writes, plus the readback: the
                // breaker streams the accumulated temporary back out of
                // the page store after convergence — all buffer hits
                // while it fits the breaker memory budget, one full
                // sequential re-read once spilled. (Residency-gated so
                // the symbolic §4.6 model keeps its shape.) The dedup
                // bookkeeping stays uncharged: the executor counts
                // comparisons and method calls, not hash probes, so
                // charging it as `evals` was a phantom the calibration
                // residuals flagged.
                let bt = p.breaker_frames();
                let readback = if p.residency && (bt <= 0.0 || total_pages > bt) {
                    total_pages
                } else {
                    0.0
                };
                let own_feat = CostFeatures {
                    seq_pages: readback,
                    write_pages: total_pages,
                    ..CostFeatures::default()
                };
                let own = Cost::new(own_feat.io(w), own_feat.cpu(w));
                let mut cols = HashMap::new();
                for (nf, t) in fields {
                    cols.insert(
                        nf.clone(),
                        ColInfo {
                            ty: t.clone(),
                            resident: false,
                        },
                    );
                }
                self.note(
                    pt,
                    OpKind::Fix,
                    format!("Fix({temp}) x{:.0}", curve.iterations),
                    own_feat,
                    own,
                    total_rows,
                    total_pages,
                );
                if let Some(line) = self.breakdown.last_mut() {
                    line.fix = Some(curve);
                }
                NodeEst {
                    rows: total_rows,
                    pages: total_pages,
                    cols,
                    cost: base_est.cost + iter_cost + own,
                    fanout_base: None,
                }
            }
        };
        Ok(est)
    }

    #[allow(clippy::too_many_arguments)]
    fn note(
        &mut self,
        pt: &Pt,
        kind: OpKind,
        label: String,
        feat: CostFeatures,
        cost: Cost,
        rows: f64,
        pages: f64,
    ) {
        let node = self.node_ids.get(&(pt as *const Pt)).copied();
        self.breakdown.push(NodeCost {
            label,
            kind,
            node,
            cost,
            feat,
            rows,
            pages,
            fix: None,
        });
    }

    /// Per-row access cost of evaluating an expression: page fetches
    /// for dereferences along paths (fanning out over collections),
    /// method-invocation costs for computed attributes, and one
    /// evaluation per comparison.
    fn expr_access_cost(&self, expr: &Expr, cols: &HashMap<String, ColInfo>) -> ExprCost {
        let m = self.model;
        let mut out = ExprCost::default();
        match expr {
            Expr::True | Expr::Lit(_) | Expr::Var(_) => {}
            Expr::Path { base, steps } => {
                // Resolve the base column, allowing qualified `var.field`.
                let (info, rest): (Option<&ColInfo>, &[String]) = if let Some(ci) = cols.get(base) {
                    (Some(ci), steps.as_slice())
                } else if !steps.is_empty() {
                    let q = format!("{base}.{}", steps[0]);
                    (cols.get(&q), &steps[1..])
                } else {
                    (None, steps.as_slice())
                };
                let Some(info) = info else {
                    return out;
                };
                let mut mult = 1.0f64;
                let mut in_hand = info.resident;
                let mut ty = info.ty.clone();
                for step in rest {
                    ty = strip(ty);
                    let ResolvedType::Object(class) = ty else {
                        break;
                    };
                    if !in_hand {
                        out.io += mult; // fetch the object's page
                        match m.physical.entities_of_class(class).first() {
                            Some(&e) => {
                                if !self.hot.contains(&e) && !self.scan_resident.contains(&e) {
                                    out.footprint += m
                                        .stats
                                        .entity(e)
                                        .map(|s| s.pages as f64)
                                        .unwrap_or(f64::INFINITY);
                                }
                                out.touched.push(e);
                            }
                            None => out.footprint += f64::INFINITY,
                        }
                    }
                    let Some((aid, attr)) = m.catalog.attr(class, step) else {
                        break;
                    };
                    if let AttributeKind::Computed { eval_cost } = attr.kind {
                        out.method_units += mult * eval_cost;
                    }
                    if attr.ty.is_collection() {
                        mult *= m.attr_fanout(class, aid).max(f64::MIN_POSITIVE);
                    }
                    ty = attr.ty.clone();
                    in_hand = false; // referenced objects not yet fetched
                }
                // The leaf read itself is free; comparison adds cpu.
            }
            Expr::Cmp { lhs, rhs, .. } => {
                out.absorb(self.expr_access_cost(lhs, cols));
                out.absorb(self.expr_access_cost(rhs, cols));
                out.evals += 1.0; // one evaluation per comparison
            }
            Expr::And(l, r) | Expr::Or(l, r) | Expr::Add(l, r) => {
                out.absorb(self.expr_access_cost(l, cols));
                out.absorb(self.expr_access_cost(r, cols));
            }
            Expr::Not(e) => {
                out.absorb(self.expr_access_cost(e, cols));
            }
        }
        out
    }

    /// Output type of a projection expression (best effort).
    fn expr_out_type(&self, expr: &Expr, cols: &HashMap<String, ColInfo>) -> ResolvedType {
        let env: HashMap<String, ResolvedType> = cols
            .iter()
            .map(|(k, v)| (k.clone(), v.ty.clone()))
            .collect();
        oorq_pt::type_of_column_expr(self.model.catalog, expr, &env)
            .unwrap_or(ResolvedType::Atomic(oorq_schema::AtomicType::Int))
    }

    /// Selectivity of a predicate, guaranteed finite and in `[0, 1]`:
    /// every composite is clamped and a degenerate (NaN) leaf estimate
    /// falls back to the configured default, so a selection provably
    /// never grows its input (CM003 by construction).
    fn selectivity(&self, expr: &Expr, cols: &HashMap<String, ColInfo>) -> f64 {
        let s = self.selectivity_raw(expr, cols);
        if s.is_finite() {
            s.clamp(0.0, 1.0)
        } else {
            self.model.params.default_selectivity
        }
    }

    fn selectivity_raw(&self, expr: &Expr, cols: &HashMap<String, ColInfo>) -> f64 {
        match expr {
            Expr::True => 1.0,
            Expr::And(l, r) => {
                (self.selectivity(l, cols) * self.selectivity(r, cols)).clamp(0.0, 1.0)
            }
            Expr::Or(l, r) => {
                let a = self.selectivity(l, cols);
                let b = self.selectivity(r, cols);
                (a + b - a * b).clamp(0.0, 1.0)
            }
            Expr::Not(e) => (1.0 - self.selectivity(e, cols)).clamp(0.0, 1.0),
            Expr::Cmp { op, lhs, rhs } => {
                let dl = self.expr_distinct(lhs, cols);
                let dr = self.expr_distinct(rhs, cols);
                match op {
                    CmpOp::Eq => {
                        let per_member = match (dl, dr) {
                            (Some(a), Some(b)) => 1.0 / a.max(b).max(1.0),
                            (Some(d), None) | (None, Some(d)) => 1.0 / d.max(1.0),
                            (None, None) => self.model.params.default_selectivity,
                        };
                        // Existential semantics: a path fanning out over
                        // collections succeeds when *any* member matches
                        // (independence assumption) — keeps the plain
                        // path-selection estimate consistent with its
                        // IJ/PIJ-expanded form.
                        let fan = self.expr_fanout(lhs, cols) * self.expr_fanout(rhs, cols);
                        if fan > 1.0 {
                            1.0 - (1.0 - per_member.clamp(0.0, 1.0)).powf(fan)
                        } else {
                            per_member.clamp(0.0, 1.0)
                        }
                    }
                    CmpOp::Ne => match dl.or(dr) {
                        Some(d) => 1.0 - 1.0 / d.max(1.0),
                        None => 1.0 - self.model.params.default_selectivity,
                    },
                    _ => 1.0 / 3.0,
                }
            }
            _ => self.model.params.default_selectivity,
        }
    }

    /// Total collection fan-out of a path expression (product of the
    /// average member counts of its collection-valued steps); 1.0 for
    /// non-paths.
    fn expr_fanout(&self, expr: &Expr, cols: &HashMap<String, ColInfo>) -> f64 {
        let m = self.model;
        let Expr::Path { base, steps } = expr else {
            return 1.0;
        };
        let (info, rest): (Option<&ColInfo>, &[String]) = if let Some(ci) = cols.get(base) {
            (Some(ci), steps.as_slice())
        } else if !steps.is_empty() {
            let q = format!("{base}.{}", steps[0]);
            (cols.get(&q), &steps[1..])
        } else {
            (None, steps)
        };
        let Some(info) = info else { return 1.0 };
        let mut ty = strip(info.ty.clone());
        let mut fan = 1.0f64;
        for step in rest {
            let ResolvedType::Object(class) = ty else {
                break;
            };
            let Some((aid, attr)) = m.catalog.attr(class, step) else {
                break;
            };
            if attr.ty.is_collection() {
                fan *= self.model.attr_fanout(class, aid).max(1.0);
            }
            ty = strip(attr.ty.clone());
        }
        fan
    }

    /// Distinct-value count of an expression when it resolves to an
    /// attribute or a column; `None` for constants and computed values.
    fn expr_distinct(&self, expr: &Expr, cols: &HashMap<String, ColInfo>) -> Option<f64> {
        let m = self.model;
        match expr {
            Expr::Var(v) => {
                let info = cols.get(v)?;
                match &strip(info.ty.clone()) {
                    ResolvedType::Object(c) => {
                        let e = m.physical.entities_of_class(*c).first()?;
                        Some(m.stats.entity(*e)?.cardinality as f64)
                    }
                    _ => None,
                }
            }
            Expr::Path { base, steps } => {
                let (info, rest): (Option<&ColInfo>, &[String]) = if let Some(ci) = cols.get(base) {
                    (Some(ci), steps.as_slice())
                } else if !steps.is_empty() {
                    let q = format!("{base}.{}", steps[0]);
                    (cols.get(&q), &steps[1..])
                } else {
                    (None, steps)
                };
                let info = info?;
                let mut ty = strip(info.ty.clone());
                if rest.is_empty() {
                    return match ty {
                        ResolvedType::Object(c) => {
                            let e = m.physical.entities_of_class(c).first()?;
                            Some(m.stats.entity(*e)?.cardinality as f64)
                        }
                        _ => None,
                    };
                }
                let mut last: Option<f64> = None;
                for step in rest {
                    ty = strip(ty);
                    let ResolvedType::Object(class) = ty else {
                        return last;
                    };
                    let (aid, attr) = m.catalog.attr(class, step)?;
                    last = Some(m.attr_distinct(class, aid));
                    ty = attr.ty.clone();
                }
                last
            }
            _ => None,
        }
    }
}

fn strip(ty: ResolvedType) -> ResolvedType {
    match ty {
        ResolvedType::Set(e) | ResolvedType::List(e) => strip(*e),
        other => other,
    }
}

/// Mirror of `PhysOp::rescannable` at the PT level: whether a
/// nested-loop inner lowers to something the executor can honestly
/// re-open per outer row (a leaf scan under filters/projections), or
/// becomes a materialize-once breaker backed by a page-store
/// temporary. Conservative on index selections, which may still lower
/// to a rescannable filter fallback.
fn pt_rescannable(pt: &Pt) -> bool {
    match pt {
        Pt::Entity { .. } | Pt::Temp { .. } => true,
        Pt::Sel {
            method: AccessMethod::Scan,
            input,
            ..
        }
        | Pt::Proj { input, .. } => pt_rescannable(input),
        _ => false,
    }
}
