//! The cost estimator: Figure 5's formulas generalized to arbitrary PTs
//! over the statistics of §3.2.
//!
//! The estimator predicts the behaviour of the pipelined executor in
//! `oorq-exec`: page I/O of scans, implicit-join dereferences (clustering
//! aware), path-index probes (`‖C‖ · (nblevels + nbleaves/‖C₁‖)`),
//! nested-loop rescans (buffer aware), index-join probes, and semi-naive
//! fixpoints (`Σᵢ cost(Exp(Tᵢ))` with the iteration count bounded by the
//! chain-depth statistics).

use std::collections::HashMap;

use oorq_pt::{AccessMethod, JoinAlgo, Pt};
use oorq_query::{CmpOp, Expr};
use oorq_schema::{AttrId, AttributeKind, Catalog, ClassId, ResolvedType};
use oorq_storage::{DbStats, EntitySource, IndexKindDesc, PhysicalSchema, WidthModel};

use crate::error::CostError;
use crate::params::{Cost, CostParams};

/// Per-node cost line of a plan-cost breakdown.
#[derive(Debug, Clone)]
pub struct NodeCost {
    /// Short label of the node (operator + key detail).
    pub label: String,
    /// Pre-order index of the PT node this line estimates (the
    /// numbering of `oorq_pt::node_ids`, shared with the physical
    /// plan's `OpMeta::pt_node`) — the join key for predicted-vs-
    /// observed per-operator reporting.
    pub node: Option<usize>,
    /// The node's own cost (excluding children).
    pub cost: Cost,
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated output pages if materialized.
    pub pages: f64,
}

/// The cost estimate of a whole plan.
#[derive(Debug, Clone)]
pub struct PlanCost {
    /// Total cost.
    pub cost: Cost,
    /// Estimated answer cardinality.
    pub rows: f64,
    /// Post-order per-node breakdown.
    pub breakdown: Vec<NodeCost>,
}

impl PlanCost {
    /// Weighted total.
    pub fn total(&self, params: &CostParams) -> f64 {
        self.cost.total(params)
    }
}

/// Column provenance tracked during estimation.
#[derive(Debug, Clone)]
struct ColInfo {
    ty: ResolvedType,
    /// True when direct attribute reads on this column cost no I/O (the
    /// object's page is in hand at that point of the pipeline).
    resident: bool,
}

/// Snapshot taken when a fan-out operator (IJ/PIJ) multiplies the row
/// count: remembers the pre-fanout columns and cardinality so a later
/// projection back onto those columns can estimate the *existential*
/// row count (`rows_before * (1 - (1 - sel)^mult)`, independence
/// assumption) instead of keeping the multiplied one.
#[derive(Debug, Clone)]
struct FanoutBase {
    cols: Vec<String>,
    rows: f64,
    mult: f64,
    sel: f64,
}

#[derive(Debug, Clone)]
struct NodeEst {
    rows: f64,
    pages: f64,
    cols: HashMap<String, ColInfo>,
    cost: Cost,
    fanout_base: Option<FanoutBase>,
}

/// The cost model: catalog + physical schema + statistics + parameters.
pub struct CostModel<'a> {
    /// Conceptual catalog.
    pub catalog: &'a Catalog,
    /// Physical schema (entities, clustering, indexes).
    pub physical: &'a PhysicalSchema,
    /// Database statistics.
    pub stats: &'a DbStats,
    /// Model parameters.
    pub params: CostParams,
    /// Width model for page estimates of intermediate results.
    pub width: WidthModel,
    /// Shapes of temporaries (qualified by PT `Temp` names).
    pub temp_fields: HashMap<String, Vec<(String, ResolvedType)>>,
    /// Assumed cardinality of temporaries referenced *outside* a `Fix`
    /// that builds them (e.g. while planning the recursive side of a
    /// fixpoint in isolation).
    pub temp_rows_hint: HashMap<String, f64>,
}

impl<'a> CostModel<'a> {
    /// New model with default width.
    pub fn new(
        catalog: &'a Catalog,
        physical: &'a PhysicalSchema,
        stats: &'a DbStats,
        params: CostParams,
    ) -> Self {
        CostModel {
            catalog,
            physical,
            stats,
            params,
            width: WidthModel::default(),
            temp_fields: HashMap::new(),
            temp_rows_hint: HashMap::new(),
        }
    }

    /// Assume a cardinality for a temporary when no fixpoint context
    /// provides one.
    pub fn hint_temp_rows(&mut self, name: impl Into<String>, rows: f64) {
        self.temp_rows_hint.insert(name.into(), rows);
    }

    /// Register a temporary's shape.
    pub fn with_temp(
        mut self,
        name: impl Into<String>,
        fields: Vec<(String, ResolvedType)>,
    ) -> Self {
        self.temp_fields.insert(name.into(), fields);
        self
    }

    /// Estimate the cost of a whole plan.
    pub fn cost(&self, pt: &Pt) -> Result<PlanCost, CostError> {
        let mut ctx = EstCtx {
            model: self,
            temp_rows: HashMap::new(),
            breakdown: Vec::new(),
            node_ids: oorq_pt::node_ids(pt),
        };
        let est = ctx.est(pt, true)?;
        Ok(PlanCost {
            cost: est.cost,
            rows: est.rows,
            breakdown: ctx.breakdown,
        })
    }

    /// Estimated iteration count for fixpoints: the deepest chain in the
    /// statistics, or the configured default.
    pub fn fix_iterations(&self) -> f64 {
        self.stats
            .max_chain_depth()
            .map(|d| (d as f64).max(1.0))
            .unwrap_or(self.params.default_fix_iterations)
    }

    fn entity_rows_pages(&self, id: oorq_storage::EntityId) -> (f64, f64) {
        match self.stats.entity(id) {
            Some(s) => (s.cardinality as f64, s.pages as f64),
            None => (0.0, 0.0),
        }
    }

    /// Fan-out (average members, discounted by nulls) of an attribute.
    fn attr_fanout(&self, class: ClassId, attr: AttrId) -> f64 {
        let Some(&entity) = self.physical.entities_of_class(class).first() else {
            return 1.0;
        };
        match self
            .stats
            .entity(entity)
            .and_then(|s| s.attrs.get(attr.0 as usize))
        {
            Some(a) => (a.avg_fanout * (1.0 - a.null_fraction)).max(0.0),
            None => 1.0,
        }
    }

    /// Distinct values of an attribute (for equality selectivity).
    fn attr_distinct(&self, class: ClassId, attr: AttrId) -> f64 {
        let Some(&entity) = self.physical.entities_of_class(class).first() else {
            return 10.0;
        };
        match self
            .stats
            .entity(entity)
            .and_then(|s| s.attrs.get(attr.0 as usize))
        {
            Some(a) if a.distinct > 0 => a.distinct as f64,
            _ => 10.0,
        }
    }

    fn is_clustered(&self, class: ClassId, attr: AttrId) -> bool {
        self.physical
            .entities_of_class(class)
            .first()
            .map(|&e| self.physical.entity(e).is_clustered(attr))
            .unwrap_or(false)
    }
}

struct EstCtx<'m, 'a> {
    model: &'m CostModel<'a>,
    /// Cardinality assumed for each temporary (set while estimating the
    /// recursive side of a fixpoint: the delta size).
    temp_rows: HashMap<String, f64>,
    breakdown: Vec<NodeCost>,
    /// Pre-order indices of the estimated plan's nodes (join key shared
    /// with physical-plan lowering).
    node_ids: HashMap<*const Pt, usize>,
}

impl EstCtx<'_, '_> {
    /// Estimate a node. `charge_scan` is false for leaves accessed
    /// through an index (their sequential scan is replaced by probes).
    fn est(&mut self, pt: &Pt, charge_scan: bool) -> Result<NodeEst, CostError> {
        let m = self.model;
        let p = &m.params;
        let est = match pt {
            Pt::Entity { id, var } => {
                let (rows, pages) = m.entity_rows_pages(*id);
                let desc = m.physical.entity(*id);
                let mut cols = HashMap::new();
                match &desc.source {
                    EntitySource::Class(c) => {
                        cols.insert(
                            var.clone(),
                            ColInfo {
                                ty: ResolvedType::Object(*c),
                                resident: true,
                            },
                        );
                    }
                    EntitySource::Relation(r) => {
                        for (n, t) in &m.catalog.relation(*r).fields {
                            cols.insert(
                                format!("{var}.{n}"),
                                ColInfo {
                                    ty: t.clone(),
                                    resident: false,
                                },
                            );
                        }
                    }
                    EntitySource::Temporary => {
                        return Err(CostError::TempAsEntity(desc.name.clone()))
                    }
                }
                let io = if charge_scan { pages } else { 0.0 };
                self.note(
                    pt,
                    format!("scan {}", desc.name),
                    Cost::new(io, 0.0),
                    rows,
                    pages,
                );
                NodeEst {
                    rows,
                    pages,
                    cols,
                    cost: Cost::new(io, 0.0),
                    fanout_base: None,
                }
            }
            Pt::Temp { name, var } => {
                let fields = m
                    .temp_fields
                    .get(name)
                    .ok_or_else(|| CostError::UnknownTemp(name.clone()))?;
                let rows = self
                    .temp_rows
                    .get(name)
                    .or_else(|| m.temp_rows_hint.get(name))
                    .copied()
                    .unwrap_or(0.0);
                let types: Vec<ResolvedType> = fields.iter().map(|(_, t)| t.clone()).collect();
                let pages = m.width.pages_for(rows.ceil() as u64, &types) as f64;
                let mut cols = HashMap::new();
                for (n, t) in fields {
                    cols.insert(
                        format!("{var}.{n}"),
                        ColInfo {
                            ty: t.clone(),
                            resident: false,
                        },
                    );
                }
                let io = if charge_scan { pages } else { 0.0 };
                self.note(
                    pt,
                    format!("scan temp {name}"),
                    Cost::new(io, 0.0),
                    rows,
                    pages,
                );
                NodeEst {
                    rows,
                    pages,
                    cols,
                    cost: Cost::new(io, 0.0),
                    fanout_base: None,
                }
            }
            Pt::Sel {
                pred,
                method,
                input,
            } => {
                match method {
                    AccessMethod::Scan => {
                        let mut child = self.est(input, true)?;
                        let (io_row, cpu_row) = self.expr_access_cost(pred, &child.cols);
                        let sel = self.selectivity(pred, &child.cols);
                        let own = Cost::new(child.rows * io_row, child.rows * cpu_row);
                        child.cost += own;
                        child.rows *= sel;
                        child.pages = (child.pages * sel).max(child.rows.min(1.0));
                        if let Some(fb) = &mut child.fanout_base {
                            fb.sel *= sel;
                        }
                        self.note(pt, format!("Sel[{pred}]"), own, child.rows, child.pages);
                        child
                    }
                    AccessMethod::Index(idx) => {
                        // Index access replaces the scan of the entity leaf.
                        let mut child = self.est(input, false)?;
                        let desc = m.physical.index(*idx);
                        let sel = self.selectivity(pred, &child.cols);
                        let matches = child.rows * sel;
                        let probe_io =
                            desc.stats.nblevels as f64 + (matches / 8.0).max(0.0) + matches; // fetch matched objects' pages
                        let own = Cost::new(probe_io, matches);
                        child.cost += own;
                        child.rows = matches;
                        child.pages = (child.pages * sel).max(child.rows.min(1.0));
                        self.note(pt, format!("Sel^idx[{pred}]"), own, child.rows, child.pages);
                        child
                    }
                }
            }
            Pt::Proj { cols, input } => {
                let child = self.est(input, true)?;
                let mut io_row = 0.0;
                let mut cpu_row = 0.0;
                for (_, e) in cols {
                    let (i, c) = self.expr_access_cost(e, &child.cols);
                    io_row += i;
                    cpu_row += c.max(0.1);
                }
                let own = Cost::new(child.rows * io_row, child.rows * cpu_row);
                // Existential dedup: projecting back onto columns that
                // existed before a fan-out collapses the multiplied rows
                // (independence assumption over the fanned-out members).
                let mut out_rows = child.rows;
                if let Some(fb) = &child.fanout_base {
                    let mut sources: Vec<String> = Vec::new();
                    for (_, e) in cols {
                        for v in e.vars() {
                            sources.push(v);
                        }
                    }
                    if sources.iter().all(|v| fb.cols.contains(v)) {
                        let pass = 1.0 - (1.0 - fb.sel.clamp(0.0, 1.0)).powf(fb.mult.max(1.0));
                        out_rows = out_rows.min(fb.rows * pass.clamp(0.0, 1.0));
                    }
                }
                let mut out_cols = HashMap::new();
                for (n, e) in cols {
                    let ty = self.expr_out_type(e, &child.cols);
                    out_cols.insert(
                        n.clone(),
                        ColInfo {
                            ty,
                            resident: false,
                        },
                    );
                }
                let types: Vec<ResolvedType> = out_cols.values().map(|c| c.ty.clone()).collect();
                let pages = m.width.pages_for(out_rows.ceil() as u64, &types) as f64;
                self.note(pt, "Proj".to_string(), own, out_rows, pages);
                NodeEst {
                    rows: out_rows,
                    pages,
                    cols: out_cols,
                    cost: child.cost + own,
                    fanout_base: None,
                }
            }
            Pt::IJ {
                on,
                step,
                out,
                input,
                target,
            } => {
                let child = self.est(input, true)?;
                let (on_io, on_cpu) = self.expr_access_cost(on, &child.cols);
                let (fanout, clustered) = match step.class_attr {
                    Some((c, a)) => (m.attr_fanout(c, a).max(0.0), m.is_clustered(c, a)),
                    // Oid-valued relation/temporary field: scalar, never
                    // clustered with the consuming temporary.
                    None => (1.0, false),
                };
                let rows = child.rows * fanout.max(f64::MIN_POSITIVE);
                let per_deref = if clustered { p.clustered_access } else { 1.0 };
                let own = Cost::new(child.rows * on_io + rows * per_deref, child.rows * on_cpu);
                let target_class = match target.as_ref() {
                    Pt::Entity { id, .. } => match m.physical.entity(*id).source {
                        EntitySource::Class(c) => Some(c),
                        _ => None,
                    },
                    _ => None,
                }
                .or_else(|| {
                    step.class_attr
                        .and_then(|(c, a)| m.catalog.attribute(c, a).ty.referenced_class())
                })
                .ok_or_else(|| CostError::Pt(oorq_pt::PtError::NotAReference(step.name.clone())))?;
                let mut cols = child.cols.clone();
                cols.insert(
                    out.clone(),
                    ColInfo {
                        ty: ResolvedType::Object(target_class),
                        resident: true,
                    },
                );
                let types: Vec<ResolvedType> = cols.values().map(|c| c.ty.clone()).collect();
                let pages = m.width.pages_for(rows.ceil() as u64, &types) as f64;
                let fanout_base = Some(match child.fanout_base {
                    Some(fb) => FanoutBase {
                        mult: fb.mult * fanout.max(1.0),
                        ..fb
                    },
                    None => FanoutBase {
                        cols: child.cols.keys().cloned().collect(),
                        rows: child.rows,
                        mult: fanout.max(1.0),
                        sel: 1.0,
                    },
                });
                self.note(pt, format!("IJ_{}", step.name), own, rows, pages);
                NodeEst {
                    rows,
                    pages,
                    cols,
                    cost: child.cost + own,
                    fanout_base,
                }
            }
            Pt::PIJ {
                index,
                on,
                outs,
                input,
                ..
            } => {
                let child = self.est(input, true)?;
                let desc = m.physical.index(*index);
                let IndexKindDesc::Path { path } = desc.kind.clone() else {
                    return Err(CostError::Pt(oorq_pt::PtError::NotAPathIndex));
                };
                let head_class = path[0].0;
                let head_entity = m
                    .physical
                    .entities_of_class(head_class)
                    .first()
                    .copied()
                    .ok_or(CostError::MissingStats)?;
                let head_card = m
                    .stats
                    .entity(head_entity)
                    .map(|s| s.cardinality as f64)
                    .unwrap_or(1.0)
                    .max(1.0);
                let (on_io, on_cpu) = self.expr_access_cost(on, &child.cols);
                // Figure 5: ‖C‖ * (nblevels + nbleaves / ‖C₁‖).
                let probe = desc.stats.nblevels as f64 + desc.stats.nbleaves as f64 / head_card;
                let mut fan = 1.0;
                for (c, a) in &path {
                    fan *= m.attr_fanout(*c, *a).max(f64::MIN_POSITIVE);
                }
                let rows = child.rows * fan;
                let own = Cost::new(child.rows * (on_io + probe), child.rows * on_cpu);
                let mut cols = child.cols.clone();
                for (i, outn) in outs.iter().enumerate() {
                    let (c, a) = path[i];
                    let attr = m.catalog.attribute(c, a);
                    if let Some(tc) = attr.ty.referenced_class() {
                        cols.insert(
                            outn.clone(),
                            // Index-only: the objects' pages are NOT read.
                            ColInfo {
                                ty: ResolvedType::Object(tc),
                                resident: false,
                            },
                        );
                    }
                }
                let types: Vec<ResolvedType> = cols.values().map(|c| c.ty.clone()).collect();
                let pages = m.width.pages_for(rows.ceil() as u64, &types) as f64;
                let fanout_base = Some(match child.fanout_base {
                    Some(fb) => FanoutBase {
                        mult: fb.mult * fan.max(1.0),
                        ..fb
                    },
                    None => FanoutBase {
                        cols: child.cols.keys().cloned().collect(),
                        rows: child.rows,
                        mult: fan.max(1.0),
                        sel: 1.0,
                    },
                });
                self.note(
                    pt,
                    format!("PIJ_{}", desc.display_name(m.catalog)),
                    own,
                    rows,
                    pages,
                );
                NodeEst {
                    rows,
                    pages,
                    cols,
                    cost: child.cost + own,
                    fanout_base,
                }
            }
            Pt::EJ {
                pred,
                algo,
                left,
                right,
            } => {
                let l = self.est(left, true)?;
                match algo {
                    JoinAlgo::NestedLoop => {
                        let r = self.est(right, true)?;
                        let mut cols = l.cols.clone();
                        for (k, v) in &r.cols {
                            cols.insert(k.clone(), v.clone());
                        }
                        let sel = self.selectivity(pred, &cols);
                        let rows = l.rows * r.rows * sel;
                        // Inner rescans: free when the inner fits in the
                        // buffer, a full rescan per outer row otherwise.
                        let rescan_io = if r.pages <= p.buffer_frames as f64 {
                            0.0
                        } else {
                            (l.rows - 1.0).max(0.0) * r.pages
                        };
                        let (pio, pcpu) = self.expr_access_cost(pred, &cols);
                        let own = Cost::new(
                            rescan_io + l.rows * r.rows * pio,
                            l.rows * r.rows * pcpu.max(1.0),
                        );
                        let types: Vec<ResolvedType> =
                            cols.values().map(|c| c.ty.clone()).collect();
                        let pages = m.width.pages_for(rows.ceil() as u64, &types) as f64;
                        self.note(pt, format!("EJ[{pred}]"), own, rows, pages);
                        NodeEst {
                            rows,
                            pages,
                            cols,
                            cost: l.cost + r.cost + own,
                            fanout_base: None,
                        }
                    }
                    JoinAlgo::IndexJoin(idx) => {
                        let r = self.est(right, false)?;
                        let desc = m.physical.index(*idx);
                        let mut cols = l.cols.clone();
                        for (k, v) in &r.cols {
                            cols.insert(k.clone(), v.clone());
                        }
                        let sel = self.selectivity(pred, &cols);
                        let rows = l.rows * r.rows * sel;
                        let matches_per_probe = (r.rows * sel * l.rows).max(0.0) / l.rows.max(1.0);
                        let own = Cost::new(
                            l.rows * (desc.stats.nblevels as f64 + matches_per_probe),
                            rows.max(l.rows),
                        );
                        let types: Vec<ResolvedType> =
                            cols.values().map(|c| c.ty.clone()).collect();
                        let pages = m.width.pages_for(rows.ceil() as u64, &types) as f64;
                        self.note(pt, format!("EJ^idx[{pred}]"), own, rows, pages);
                        NodeEst {
                            rows,
                            pages,
                            cols,
                            cost: l.cost + r.cost + own,
                            fanout_base: None,
                        }
                    }
                }
            }
            Pt::Union { left, right } => {
                let l = self.est(left, true)?;
                let r = self.est(right, true)?;
                let rows = l.rows + r.rows;
                self.note(
                    pt,
                    "Union".to_string(),
                    Cost::zero(),
                    rows,
                    l.pages + r.pages,
                );
                NodeEst {
                    rows,
                    pages: l.pages + r.pages,
                    cols: l.cols,
                    cost: l.cost + r.cost,
                    fanout_base: None,
                }
            }
            Pt::Fix { temp, body } => {
                let Pt::Union { left, right } = body.as_ref() else {
                    return Err(CostError::Pt(oorq_pt::PtError::FixBodyNotUnion));
                };
                let (base, rec) = if left.references_temp(temp) {
                    (right.as_ref(), left.as_ref())
                } else {
                    (left.as_ref(), right.as_ref())
                };
                if !rec.references_temp(temp) {
                    return Err(CostError::NotRecursive(temp.clone()));
                }
                let base_est = self.est(base, true)?;
                let n = m.fix_iterations().max(1.0);
                let growth = m.stats.avg_chain_depth().unwrap_or(2.0).max(1.0);
                let total_rows = base_est.rows * growth;
                let delta = (total_rows / n).max(1.0);
                // One estimate of the recursive side with the delta as the
                // temp's cardinality, multiplied by the iteration count
                // (Figure 5's Σ cost(Exp(Tᵢ)) with Tᵢ ≈ Δ).
                let saved = self.temp_rows.insert(temp.clone(), delta);
                let rec_est = self.est(rec, true)?;
                match saved {
                    Some(s) => {
                        self.temp_rows.insert(temp.clone(), s);
                    }
                    None => {
                        self.temp_rows.remove(temp);
                    }
                }
                let iter_cost = Cost::new(
                    rec_est.cost.io * (n - 1.0).max(1.0),
                    rec_est.cost.cpu * (n - 1.0).max(1.0),
                );
                // Materialization writes of the accumulated temporary.
                let fields = m
                    .temp_fields
                    .get(temp)
                    .ok_or_else(|| CostError::UnknownTemp(temp.clone()))?;
                let types: Vec<ResolvedType> = fields.iter().map(|(_, t)| t.clone()).collect();
                let total_pages = m.width.pages_for(total_rows.ceil() as u64, &types) as f64;
                let own = iter_cost + Cost::new(total_pages, total_rows); // dedup cpu
                let mut cols = HashMap::new();
                for (nf, t) in fields {
                    cols.insert(
                        nf.clone(),
                        ColInfo {
                            ty: t.clone(),
                            resident: false,
                        },
                    );
                }
                self.note(
                    pt,
                    format!("Fix({temp}) x{n:.0}"),
                    own,
                    total_rows,
                    total_pages,
                );
                NodeEst {
                    rows: total_rows,
                    pages: total_pages,
                    cols,
                    cost: base_est.cost + own,
                    fanout_base: None,
                }
            }
        };
        Ok(est)
    }

    fn note(&mut self, pt: &Pt, label: String, cost: Cost, rows: f64, pages: f64) {
        let node = self.node_ids.get(&(pt as *const Pt)).copied();
        self.breakdown.push(NodeCost {
            label,
            node,
            cost,
            rows,
            pages,
        });
    }

    /// Per-row (io, cpu) cost of evaluating an expression: page fetches
    /// for dereferences along paths (fanning out over collections),
    /// method-invocation costs for computed attributes, and one
    /// evaluation per comparison.
    fn expr_access_cost(&self, expr: &Expr, cols: &HashMap<String, ColInfo>) -> (f64, f64) {
        let m = self.model;
        let mut io = 0.0;
        let mut cpu = 0.0;
        match expr {
            Expr::True | Expr::Lit(_) | Expr::Var(_) => {}
            Expr::Path { base, steps } => {
                // Resolve the base column, allowing qualified `var.field`.
                let (info, rest): (Option<&ColInfo>, &[String]) = if let Some(ci) = cols.get(base) {
                    (Some(ci), steps.as_slice())
                } else if !steps.is_empty() {
                    let q = format!("{base}.{}", steps[0]);
                    (cols.get(&q), &steps[1..])
                } else {
                    (None, steps.as_slice())
                };
                let Some(info) = info else { return (0.0, 0.0) };
                let mut mult = 1.0f64;
                let mut in_hand = info.resident;
                let mut ty = info.ty.clone();
                for step in rest {
                    ty = strip(ty);
                    let ResolvedType::Object(class) = ty else {
                        break;
                    };
                    if !in_hand {
                        io += mult; // fetch the object's page
                    }
                    let Some((aid, attr)) = m.catalog.attr(class, step) else {
                        break;
                    };
                    if let AttributeKind::Computed { eval_cost } = attr.kind {
                        cpu += mult * eval_cost;
                    }
                    if attr.ty.is_collection() {
                        mult *= m.attr_fanout(class, aid).max(f64::MIN_POSITIVE);
                    }
                    ty = attr.ty.clone();
                    in_hand = false; // referenced objects not yet fetched
                }
                cpu += mult * 0.0; // leaf read itself is free; comparison adds cpu
            }
            Expr::Cmp { lhs, rhs, .. } => {
                let (li, lc) = self.expr_access_cost(lhs, cols);
                let (ri, rc) = self.expr_access_cost(rhs, cols);
                io += li + ri;
                cpu += lc + rc + 1.0; // one evaluation per comparison
            }
            Expr::And(l, r) | Expr::Or(l, r) | Expr::Add(l, r) => {
                let (li, lc) = self.expr_access_cost(l, cols);
                let (ri, rc) = self.expr_access_cost(r, cols);
                io += li + ri;
                cpu += lc + rc;
            }
            Expr::Not(e) => {
                let (i, c) = self.expr_access_cost(e, cols);
                io += i;
                cpu += c;
            }
        }
        (io, cpu)
    }

    /// Output type of a projection expression (best effort).
    fn expr_out_type(&self, expr: &Expr, cols: &HashMap<String, ColInfo>) -> ResolvedType {
        let env: HashMap<String, ResolvedType> = cols
            .iter()
            .map(|(k, v)| (k.clone(), v.ty.clone()))
            .collect();
        oorq_pt::type_of_column_expr(self.model.catalog, expr, &env)
            .unwrap_or(ResolvedType::Atomic(oorq_schema::AtomicType::Int))
    }

    /// Selectivity of a predicate.
    fn selectivity(&self, expr: &Expr, cols: &HashMap<String, ColInfo>) -> f64 {
        match expr {
            Expr::True => 1.0,
            Expr::And(l, r) => self.selectivity(l, cols) * self.selectivity(r, cols),
            Expr::Or(l, r) => {
                let a = self.selectivity(l, cols);
                let b = self.selectivity(r, cols);
                (a + b - a * b).clamp(0.0, 1.0)
            }
            Expr::Not(e) => 1.0 - self.selectivity(e, cols),
            Expr::Cmp { op, lhs, rhs } => {
                let dl = self.expr_distinct(lhs, cols);
                let dr = self.expr_distinct(rhs, cols);
                match op {
                    CmpOp::Eq => {
                        let per_member = match (dl, dr) {
                            (Some(a), Some(b)) => 1.0 / a.max(b).max(1.0),
                            (Some(d), None) | (None, Some(d)) => 1.0 / d.max(1.0),
                            (None, None) => self.model.params.default_selectivity,
                        };
                        // Existential semantics: a path fanning out over
                        // collections succeeds when *any* member matches
                        // (independence assumption) — keeps the plain
                        // path-selection estimate consistent with its
                        // IJ/PIJ-expanded form.
                        let fan = self.expr_fanout(lhs, cols) * self.expr_fanout(rhs, cols);
                        if fan > 1.0 {
                            1.0 - (1.0 - per_member.clamp(0.0, 1.0)).powf(fan)
                        } else {
                            per_member
                        }
                    }
                    CmpOp::Ne => match dl.or(dr) {
                        Some(d) => 1.0 - 1.0 / d.max(1.0),
                        None => 1.0 - self.model.params.default_selectivity,
                    },
                    _ => 1.0 / 3.0,
                }
            }
            _ => self.model.params.default_selectivity,
        }
    }

    /// Total collection fan-out of a path expression (product of the
    /// average member counts of its collection-valued steps); 1.0 for
    /// non-paths.
    fn expr_fanout(&self, expr: &Expr, cols: &HashMap<String, ColInfo>) -> f64 {
        let m = self.model;
        let Expr::Path { base, steps } = expr else {
            return 1.0;
        };
        let (info, rest): (Option<&ColInfo>, &[String]) = if let Some(ci) = cols.get(base) {
            (Some(ci), steps.as_slice())
        } else if !steps.is_empty() {
            let q = format!("{base}.{}", steps[0]);
            (cols.get(&q), &steps[1..])
        } else {
            (None, steps)
        };
        let Some(info) = info else { return 1.0 };
        let mut ty = strip(info.ty.clone());
        let mut fan = 1.0f64;
        for step in rest {
            let ResolvedType::Object(class) = ty else {
                break;
            };
            let Some((aid, attr)) = m.catalog.attr(class, step) else {
                break;
            };
            if attr.ty.is_collection() {
                fan *= self.model.attr_fanout(class, aid).max(1.0);
            }
            ty = strip(attr.ty.clone());
        }
        fan
    }

    /// Distinct-value count of an expression when it resolves to an
    /// attribute or a column; `None` for constants and computed values.
    fn expr_distinct(&self, expr: &Expr, cols: &HashMap<String, ColInfo>) -> Option<f64> {
        let m = self.model;
        match expr {
            Expr::Var(v) => {
                let info = cols.get(v)?;
                match &strip(info.ty.clone()) {
                    ResolvedType::Object(c) => {
                        let e = m.physical.entities_of_class(*c).first()?;
                        Some(m.stats.entity(*e)?.cardinality as f64)
                    }
                    _ => None,
                }
            }
            Expr::Path { base, steps } => {
                let (info, rest): (Option<&ColInfo>, &[String]) = if let Some(ci) = cols.get(base) {
                    (Some(ci), steps.as_slice())
                } else if !steps.is_empty() {
                    let q = format!("{base}.{}", steps[0]);
                    (cols.get(&q), &steps[1..])
                } else {
                    (None, steps)
                };
                let info = info?;
                let mut ty = strip(info.ty.clone());
                if rest.is_empty() {
                    return match ty {
                        ResolvedType::Object(c) => {
                            let e = m.physical.entities_of_class(c).first()?;
                            Some(m.stats.entity(*e)?.cardinality as f64)
                        }
                        _ => None,
                    };
                }
                let mut last: Option<f64> = None;
                for step in rest {
                    ty = strip(ty);
                    let ResolvedType::Object(class) = ty else {
                        return last;
                    };
                    let (aid, attr) = m.catalog.attr(class, step)?;
                    last = Some(m.attr_distinct(class, aid));
                    ty = attr.ty.clone();
                }
                last
            }
            _ => None,
        }
    }
}

fn strip(ty: ResolvedType) -> ResolvedType {
    match ty {
        ResolvedType::Set(e) | ResolvedType::List(e) => strip(*e),
        other => other,
    }
}
