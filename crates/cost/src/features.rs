//! Cost features: the parameter-independent measurements each per-node
//! estimate is built from, and the operator-kind taxonomy residual
//! reporting groups by.
//!
//! Splitting every Figure 5 formula into a feature vector times the
//! [`CostWeights`](crate::CostWeights) makes the model *calibratable*:
//! the features are pure functions of the plan and the statistics, so a
//! least-squares fit of the weights against observed per-operator
//! counters never has to re-run the estimator.

use crate::params::CostWeights;

/// The kind of a PT operator, for grouping residuals and drift reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// Entity (class/relation extension) sequential scan.
    Scan,
    /// Temporary (fixpoint accumulator/delta) scan.
    TempScan,
    /// Predicate selection by scan.
    Sel,
    /// Predicate selection through a selection index.
    SelIdx,
    /// Projection (with streaming dedup).
    Proj,
    /// Implicit join (attribute dereference).
    Ij,
    /// Path-index join.
    Pij,
    /// Explicit nested-loop join.
    Ej,
    /// Explicit join through an index.
    EjIdx,
    /// Union of two legs.
    Union,
    /// Semi-naive fixpoint.
    Fix,
}

impl OpKind {
    /// Every kind, in a stable order (report row order).
    pub fn all() -> &'static [OpKind] {
        use OpKind::*;
        &[
            Scan, TempScan, Sel, SelIdx, Proj, Ij, Pij, Ej, EjIdx, Union, Fix,
        ]
    }

    /// Stable short name.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Scan => "Scan",
            OpKind::TempScan => "TempScan",
            OpKind::Sel => "Sel",
            OpKind::SelIdx => "Sel^idx",
            OpKind::Proj => "Proj",
            OpKind::Ij => "IJ",
            OpKind::Pij => "PIJ",
            OpKind::Ej => "EJ",
            OpKind::EjIdx => "EJ^idx",
            OpKind::Union => "Union",
            OpKind::Fix => "Fix",
        }
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The feature vector of one operator's *own* (exclusive) work. All
/// entries are counts in the estimator's physical units; predicted cost
/// components are the dot products with the fitted [`CostWeights`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostFeatures {
    /// Pages read by sequential scans.
    pub seq_pages: f64,
    /// Pages fetched by random dereference (implicit joins, predicate
    /// path traversal, fetching objects matched by an index).
    pub deref_pages: f64,
    /// Index non-leaf (level descent) accesses.
    pub index_level_ios: f64,
    /// Index leaf accesses.
    pub index_leaf_ios: f64,
    /// Pages written materializing temporaries.
    pub write_pages: f64,
    /// Predicate comparisons evaluated.
    pub evals: f64,
    /// Method cost units (declared `eval_cost` times invocations).
    pub method_units: f64,
}

impl CostFeatures {
    /// Predicted page accesses under the given weights.
    pub fn io(&self, w: &CostWeights) -> f64 {
        self.seq_pages * w.seq_page
            + self.deref_pages * w.deref_page
            + self.index_level_ios * w.index_level
            + self.index_leaf_ios * w.index_leaf
            + self.write_pages * w.write_page
    }

    /// Predicted evaluations under the given weights.
    pub fn cpu(&self, w: &CostWeights) -> f64 {
        self.evals * w.eval + self.method_units * w.method
    }

    /// Scale every feature (fixpoint iteration multiplication).
    pub fn scale(&self, k: f64) -> CostFeatures {
        CostFeatures {
            seq_pages: self.seq_pages * k,
            deref_pages: self.deref_pages * k,
            index_level_ios: self.index_level_ios * k,
            index_leaf_ios: self.index_leaf_ios * k,
            write_pages: self.write_pages * k,
            evals: self.evals * k,
            method_units: self.method_units * k,
        }
    }

    /// The io-side feature columns, in fit order (shared between the
    /// calibration fitter and [`CostFeatures::io`]).
    pub fn io_columns(&self) -> [f64; 5] {
        [
            self.seq_pages,
            self.deref_pages,
            self.index_level_ios,
            self.index_leaf_ios,
            self.write_pages,
        ]
    }

    /// The cpu-side feature columns, in fit order.
    pub fn cpu_columns(&self) -> [f64; 2] {
        [self.evals, self.method_units]
    }
}

impl std::ops::Add for CostFeatures {
    type Output = CostFeatures;
    fn add(self, rhs: CostFeatures) -> CostFeatures {
        CostFeatures {
            seq_pages: self.seq_pages + rhs.seq_pages,
            deref_pages: self.deref_pages + rhs.deref_pages,
            index_level_ios: self.index_level_ios + rhs.index_level_ios,
            index_leaf_ios: self.index_leaf_ios + rhs.index_leaf_ios,
            write_pages: self.write_pages + rhs.write_pages,
            evals: self.evals + rhs.evals,
            method_units: self.method_units + rhs.method_units,
        }
    }
}

impl std::ops::AddAssign for CostFeatures {
    fn add_assign(&mut self, rhs: CostFeatures) {
        *self = *self + rhs;
    }
}
