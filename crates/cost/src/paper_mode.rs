//! Symbolic cost expressions reproducing the paper's Figure 5 and the
//! §4.6 simplified model behind Figure 7.
//!
//! Under the §4.6 assumptions — no access structure besides path
//! indices, sub-objects not clustered, no materialization —
//!
//! ```text
//! access_cost(Ci, P) = |Ci| * pr      eval_cost(Ci, P) = ev
//! access_cost(Ci)    = |Ci| * pr      nbtuples(Ci, P)  = ‖Ci‖
//! access_cost(Ci,Cj) = pr             nbpages(Ci, P)   = |Ci|
//! nbleaves(index)    = lea            nblevels(index)  = lev
//! ```
//!
//! [`Sym`] is a tiny symbolic expression type that prints in the paper's
//! notation (`|Cpr|*pr + ‖Cpr‖*|Inf_i|*(pr+ev)`) and evaluates under a
//! parameter environment, so Figure 7's per-node table can be produced
//! both symbolically and numerically.

use std::collections::HashMap;
use std::fmt;

/// A symbolic cost expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Sym {
    /// Numeric constant.
    Num(f64),
    /// Named parameter (`pr`, `ev`, `lev`, `lea`, `n1`, `n2`, ...).
    Par(String),
    /// `‖X‖`: cardinality of entity X.
    Card(String),
    /// `|X|`: pages of entity X.
    Pages(String),
    /// Sum.
    Add(Vec<Sym>),
    /// Product.
    Mul(Vec<Sym>),
}

impl Sym {
    /// Parameter.
    pub fn par(name: &str) -> Sym {
        Sym::Par(name.to_string())
    }
    /// Cardinality symbol `‖name‖`.
    pub fn card(name: &str) -> Sym {
        Sym::Card(name.to_string())
    }
    /// Page-count symbol `|name|`.
    pub fn pages(name: &str) -> Sym {
        Sym::Pages(name.to_string())
    }
    /// Sum of terms (flattens nested sums).
    pub fn add(terms: impl IntoIterator<Item = Sym>) -> Sym {
        let mut out = Vec::new();
        for t in terms {
            match t {
                Sym::Add(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        if out.len() == 1 {
            out.pop().expect("len checked")
        } else {
            Sym::Add(out)
        }
    }
    /// Product of factors (flattens nested products).
    pub fn mul(factors: impl IntoIterator<Item = Sym>) -> Sym {
        let mut out = Vec::new();
        for t in factors {
            match t {
                Sym::Mul(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        if out.len() == 1 {
            out.pop().expect("len checked")
        } else {
            Sym::Mul(out)
        }
    }
    /// `pr + ev` — the per-access-and-eval unit used all over Figure 7.
    pub fn pr_plus_ev() -> Sym {
        Sym::add([Sym::par("pr"), Sym::par("ev")])
    }

    /// Evaluate under an environment binding parameters and `|X|`/`‖X‖`
    /// symbols (keys: parameter names, `|X|`, `||X||`).
    pub fn eval(&self, env: &HashMap<String, f64>) -> f64 {
        match self {
            Sym::Num(v) => *v,
            Sym::Par(p) => env.get(p).copied().unwrap_or(0.0),
            Sym::Card(c) => env.get(&format!("||{c}||")).copied().unwrap_or(0.0),
            Sym::Pages(c) => env.get(&format!("|{c}|")).copied().unwrap_or(0.0),
            Sym::Add(ts) => ts.iter().map(|t| t.eval(env)).sum(),
            Sym::Mul(ts) => ts.iter().map(|t| t.eval(env)).product(),
        }
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sym::Num(v) => {
                if v.fract() == 0.0 {
                    write!(f, "{}", *v as i64)
                } else {
                    write!(f, "{v}")
                }
            }
            Sym::Par(p) => write!(f, "{p}"),
            Sym::Card(c) => write!(f, "||{c}||"),
            Sym::Pages(c) => write!(f, "|{c}|"),
            Sym::Add(ts) => {
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{t}")?;
                }
                Ok(())
            }
            Sym::Mul(ts) => {
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "*")?;
                    }
                    match t {
                        Sym::Add(_) => write!(f, "({t})")?,
                        _ => write!(f, "{t}")?,
                    }
                }
                Ok(())
            }
        }
    }
}

/// One row of a Figure 5 / Figure 7 style table.
#[derive(Debug, Clone)]
pub struct CostRow {
    /// Node label (`T1`, `Sel_selpred(C)`, ...).
    pub node: String,
    /// Symbolic cost formula.
    pub formula: Sym,
}

impl CostRow {
    /// New row.
    pub fn new(node: impl Into<String>, formula: Sym) -> Self {
        CostRow {
            node: node.into(),
            formula,
        }
    }
}

/// The generic cost formulas of Figure 5, instantiated under the §4.6
/// simplified assumptions for a generic entity `C` (and inner `Cj` for
/// joins, path `pathInd` over head class `C1`).
pub fn fig5_formulas() -> Vec<CostRow> {
    vec![
        // Sel_selpred(C) = access_cost(C, selpred) + nbpages * eval
        CostRow::new(
            "Sel_selpred(C)",
            Sym::add([
                Sym::mul([Sym::pages("C"), Sym::par("pr")]),
                Sym::mul([Sym::pages("C"), Sym::par("ev")]),
            ]),
        ),
        // EJ_pred(Ci, Cj) = access(Ci) + nbtuples(Ci) * (access(Cj) + nbpages(Cj)*eval)
        CostRow::new(
            "EJ_pred(Ci, Cj)",
            Sym::add([
                Sym::mul([Sym::pages("Ci"), Sym::par("pr")]),
                Sym::mul([
                    Sym::card("Ci"),
                    Sym::add([
                        Sym::mul([Sym::pages("Cj"), Sym::par("pr")]),
                        Sym::mul([Sym::pages("Cj"), Sym::par("ev")]),
                    ]),
                ]),
            ]),
        ),
        // IJ_Ai(Ci, Cj) = access(Ci) + ||Ci|| * access(Ci, Cj)
        CostRow::new(
            "IJ_Ai(Ci, Cj)",
            Sym::add([
                Sym::mul([Sym::pages("Ci"), Sym::par("pr")]),
                Sym::mul([Sym::card("Ci"), Sym::par("pr")]),
            ]),
        ),
        // PIJ_pathInd(C, C2..Cn) = ||C|| * (nblevels + nbleaves/||C1||)
        CostRow::new(
            "PIJ_pathInd(C, C2, ..., Cn)",
            Sym::mul([
                Sym::card("C"),
                Sym::add([
                    Sym::par("lev"),
                    Sym::mul([Sym::par("lea"), Sym::par("1/||C1||")]),
                ]),
            ]),
        ),
        // Fix(T, P) = sum_i cost(Exp(T_i)) — symbolically n * cost(Exp)
        CostRow::new(
            "Fix(T, P)",
            Sym::mul([Sym::par("n"), Sym::par("cost(Exp(T_i))")]),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sym_displays_in_paper_notation() {
        let t13 = Sym::add([
            Sym::mul([Sym::pages("Cpr"), Sym::par("pr")]),
            Sym::mul([Sym::card("Cpr"), Sym::pages("T11"), Sym::pr_plus_ev()]),
        ]);
        assert_eq!(t13.to_string(), "|Cpr|*pr + ||Cpr||*|T11|*(pr + ev)");
    }

    #[test]
    fn sym_evaluates() {
        let env: HashMap<String, f64> = [
            ("pr".to_string(), 1.0),
            ("ev".to_string(), 1.0),
            ("|Cpr|".to_string(), 10.0),
            ("||Cpr||".to_string(), 100.0),
            ("|T11|".to_string(), 5.0),
        ]
        .into_iter()
        .collect();
        let t13 = Sym::add([
            Sym::mul([Sym::pages("Cpr"), Sym::par("pr")]),
            Sym::mul([Sym::card("Cpr"), Sym::pages("T11"), Sym::pr_plus_ev()]),
        ]);
        assert_eq!(t13.eval(&env), 10.0 + 100.0 * 5.0 * 2.0);
    }

    #[test]
    fn fig5_table_has_every_operator() {
        let rows = fig5_formulas();
        let names: Vec<&str> = rows.iter().map(|r| r.node.as_str()).collect();
        assert!(names.iter().any(|n| n.starts_with("Sel")));
        assert!(names.iter().any(|n| n.starts_with("EJ")));
        assert!(names.iter().any(|n| n.starts_with("IJ")));
        assert!(names.iter().any(|n| n.starts_with("PIJ")));
        assert!(names.iter().any(|n| n.starts_with("Fix")));
    }

    #[test]
    fn add_mul_flatten_and_simplify_singletons() {
        let a = Sym::add([Sym::add([Sym::par("a"), Sym::par("b")]), Sym::par("c")]);
        assert_eq!(a.to_string(), "a + b + c");
        let m = Sym::mul([Sym::par("x")]);
        assert_eq!(m, Sym::par("x"));
    }
}
