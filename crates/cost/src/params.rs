//! Cost-model parameters.

/// A cost estimate, split into I/O (page accesses) and CPU (predicate /
/// method evaluations) as §3.2 prescribes: "The computed cost includes
/// I/O time and CPU time, thereby giving a fair estimation of the use of
/// machine resources."
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    /// Page accesses (unit: one page read/write).
    pub io: f64,
    /// Evaluations (unit: one predicate evaluation).
    pub cpu: f64,
}

impl Cost {
    /// Zero cost.
    pub fn zero() -> Cost {
        Cost::default()
    }

    /// Construct from components.
    pub fn new(io: f64, cpu: f64) -> Cost {
        Cost { io, cpu }
    }

    /// Weighted total in abstract time units.
    pub fn total(&self, params: &CostParams) -> f64 {
        self.io * params.pr + self.cpu * params.ev
    }
}

impl std::ops::Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            io: self.io + rhs.io,
            cpu: self.cpu + rhs.cpu,
        }
    }
}

impl std::ops::AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        self.io += rhs.io;
        self.cpu += rhs.cpu;
    }
}

/// Parameters of the cost model. `pr` and `ev` are the paper's §4.6
/// constants: the cost of one page access and of one predicate
/// evaluation, respectively.
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Cost of one page access (`pr`).
    pub pr: f64,
    /// Cost of one predicate evaluation (`ev`).
    pub ev: f64,
    /// Buffer frames assumed available. Inner operands of nested-loop
    /// joins smaller than this stay resident across rescans; `0` models
    /// the paper's §4.6 simplification where every access pays `pr`.
    pub buffer_frames: u64,
    /// Fraction of a page access charged for a *clustered* implicit join
    /// (sub-object co-located with its owner). `1.0` would mean
    /// clustering is worthless; the default models same-or-neighbour
    /// page placement.
    pub clustered_access: f64,
    /// Default number of fixpoint iterations when the statistics carry no
    /// chain-depth information.
    pub default_fix_iterations: f64,
    /// Default selectivity for predicates that cannot be estimated.
    pub default_selectivity: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            pr: 1.0,
            ev: 0.05,
            buffer_frames: 64,
            clustered_access: 0.1,
            default_fix_iterations: 10.0,
            default_selectivity: 0.1,
        }
    }
}

impl CostParams {
    /// The §4.6 simplified model: no access structures besides path
    /// indices, sub-objects not clustered, no materialization, every
    /// access pays `pr`, every evaluation pays `ev`.
    pub fn paper_mode() -> Self {
        CostParams {
            pr: 1.0,
            ev: 1.0,
            buffer_frames: 0,
            clustered_access: 1.0,
            default_fix_iterations: 10.0,
            default_selectivity: 0.1,
        }
    }
}
