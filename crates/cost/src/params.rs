//! Cost-model parameters.

use crate::profiles::FixProfiles;

/// A cost estimate, split into I/O (page accesses) and CPU (predicate /
/// method evaluations) as §3.2 prescribes: "The computed cost includes
/// I/O time and CPU time, thereby giving a fair estimation of the use of
/// machine resources."
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    /// Page accesses (unit: one page read/write).
    pub io: f64,
    /// Evaluations (unit: one predicate evaluation).
    pub cpu: f64,
}

impl Cost {
    /// Zero cost.
    pub fn zero() -> Cost {
        Cost::default()
    }

    /// Construct from components.
    pub fn new(io: f64, cpu: f64) -> Cost {
        Cost { io, cpu }
    }

    /// Weighted total in abstract time units.
    pub fn total(&self, params: &CostParams) -> f64 {
        self.io * params.pr + self.cpu * params.ev
    }
}

impl std::ops::Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            io: self.io + rhs.io,
            cpu: self.cpu + rhs.cpu,
        }
    }
}

impl std::ops::AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        self.io += rhs.io;
        self.cpu += rhs.cpu;
    }
}

/// Calibratable weights of the estimator's cost *components*.
///
/// Every per-node estimate is assembled from a small feature vector
/// ([`crate::CostFeatures`]: sequential pages, dereference pages, index
/// level/leaf accesses, temporary writes, predicate evaluations, method
/// cost units); these weights are the linear coefficients mapping the
/// features onto predicted page accesses and evaluations. `1.0`
/// everywhere reproduces the uncalibrated Figure 5 formulas; the
/// calibration harness (`oorq-bench`) fits them by least squares over
/// the observed per-operator counters of the scenario corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Weight of sequentially scanned pages (scan cost per page).
    pub seq_page: f64,
    /// Weight of random object dereferences (implicit joins, predicate
    /// path traversal, fetching index matches). A fitted value below 1
    /// captures buffer hits the §4.6 model ignores.
    pub deref_page: f64,
    /// Weight of index non-leaf (level descent) page accesses — the
    /// calibrated stand-in for mis-stated index heights.
    pub index_level: f64,
    /// Weight of index leaf accesses.
    pub index_leaf: f64,
    /// Weight of temporary materialization writes (fixpoint accumulator).
    pub write_page: f64,
    /// Weight of one predicate comparison.
    pub eval: f64,
    /// Weight of one method (computed-attribute) cost unit. The
    /// estimator charges a method's declared `eval_cost` units per
    /// invocation while the executor counts invocations, so the fitted
    /// value absorbs the declared-vs-counted scale.
    pub method: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            seq_page: 1.0,
            deref_page: 1.0,
            index_level: 1.0,
            index_leaf: 1.0,
            write_page: 1.0,
            eval: 1.0,
            method: 1.0,
        }
    }
}

/// Parameters of the cost model. `pr` and `ev` are the paper's §4.6
/// constants: the cost of one page access and of one predicate
/// evaluation, respectively.
#[derive(Debug, Clone)]
pub struct CostParams {
    /// Cost of one page access (`pr`).
    pub pr: f64,
    /// Cost of one predicate evaluation (`ev`).
    pub ev: f64,
    /// Buffer frames assumed available. Inner operands of nested-loop
    /// joins smaller than this stay resident across rescans; `0` models
    /// the paper's §4.6 simplification where every access pays `pr`.
    pub buffer_frames: u64,
    /// Fraction of a page access charged for a *clustered* implicit join
    /// (sub-object co-located with its owner). `1.0` would mean
    /// clustering is worthless; the default models same-or-neighbour
    /// page placement.
    pub clustered_access: f64,
    /// Buffer-residency modeling for dereference streams: when on, a
    /// stream of random dereferences whose target working set fits in
    /// `buffer_frames` pays only its cold reads (at most the working
    /// set), and pages re-touched by fixpoint iterations 2..n are
    /// charged hot. Off by default — the uncalibrated model charges
    /// every dereference like §4.6 does — and switched on by the
    /// calibrated snapshot, where the observed counters show the
    /// residency effect dominating the residuals.
    pub residency: bool,
    /// Memory budget for materializing pipeline breakers, in pages
    /// (`0` = unbounded). Mirrors the executor's
    /// `ExecConfig::memory_budget_pages`: past the budget the buffer
    /// manager spills least-recently-used temporary pages, so breaker
    /// re-reads that would hit in an unbounded buffer pay full page
    /// reads. The effective breaker-resident capacity is
    /// [`CostParams::breaker_frames`].
    pub memory_budget_pages: u64,
    /// Default number of fixpoint iterations when the statistics carry no
    /// chain-depth information.
    pub default_fix_iterations: f64,
    /// Default selectivity for predicates that cannot be estimated.
    pub default_selectivity: f64,
    /// Component weights (see [`CostWeights`]); identity by default,
    /// fitted by the calibration harness.
    pub weights: CostWeights,
    /// Fixpoint cardinality profiles fed back from execution traces
    /// (see [`FixProfiles`]); empty by default — the estimator then
    /// falls back to flat per-iteration deltas — and loaded from the
    /// checked-in `fix_profiles.toml` by [`CostParams::calibrated`].
    pub fix_profiles: FixProfiles,
    /// Scenario scope for profile lookup: when non-empty, the estimator
    /// first tries the exact `scope/temp` profile before falling back to
    /// the per-temp aggregate ([`FixProfiles::lookup`]). Set by harnesses
    /// that know which scenario a plan belongs to; empty (aggregate-only)
    /// in normal operation.
    pub profile_scope: String,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            pr: 1.0,
            ev: 0.05,
            buffer_frames: 64,
            clustered_access: 0.1,
            residency: false,
            memory_budget_pages: 0,
            default_fix_iterations: 10.0,
            default_selectivity: 0.1,
            weights: CostWeights::default(),
            fix_profiles: FixProfiles::empty(),
            profile_scope: String::new(),
        }
    }
}

/// The checked-in calibration snapshot (regenerate with
/// `reproduce calibrate-fit`).
const CALIBRATED_SNAPSHOT: &str = include_str!("../calibrated.toml");

/// The checked-in fixpoint profile snapshot (regenerate with
/// `reproduce feedback-fit`).
const FIX_PROFILES_SNAPSHOT: &str = include_str!("../fix_profiles.toml");

impl CostParams {
    /// The §4.6 simplified model: no access structures besides path
    /// indices, sub-objects not clustered, no materialization, every
    /// access pays `pr`, every evaluation pays `ev`.
    pub fn paper_mode() -> Self {
        CostParams {
            pr: 1.0,
            ev: 1.0,
            buffer_frames: 0,
            clustered_access: 1.0,
            residency: false,
            memory_budget_pages: 0,
            default_fix_iterations: 10.0,
            default_selectivity: 0.1,
            weights: CostWeights::default(),
            fix_profiles: FixProfiles::empty(),
            profile_scope: String::new(),
        }
    }

    /// Parameters fitted against the observed per-operator counters of
    /// the music/parts/chain scenario corpus — the checked-in snapshot
    /// produced by the `oorq-bench` calibration harness. Differs from
    /// [`CostParams::paper_mode`] (symbolic Figure 5 fidelity) and from
    /// [`CostParams::default`] (identity weights, no residency
    /// modeling): the snapshot switches on buffer-residency modeling of
    /// dereference streams (`residency`) and carries component weights
    /// correcting the remaining systematic drift (declared-vs-counted
    /// method cost, index probe accounting, write amplification).
    /// Also attaches the fixpoint cardinality profiles fitted by the
    /// feedback harness (`fix_profiles.toml`).
    pub fn calibrated() -> Self {
        let mut p = Self::parse_snapshot(CALIBRATED_SNAPSHOT)
            .expect("checked-in calibrated.toml must parse");
        p.fix_profiles = FixProfiles::parse(FIX_PROFILES_SNAPSHOT)
            .expect("checked-in fix_profiles.toml must parse");
        p
    }

    /// Parse a `calibrated.toml`-style snapshot: `key = value` lines,
    /// `#` comments, and a `[weights]` section for the component
    /// weights. A deliberately tiny subset of TOML so the workspace
    /// stays dependency-free.
    pub fn parse_snapshot(src: &str) -> Result<Self, String> {
        let mut p = CostParams::default();
        let mut section = String::new();
        for (lineno, raw) in src.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let key = key.trim();
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad number: {e}", lineno + 1))?;
            if !value.is_finite() {
                return Err(format!("line {}: non-finite value", lineno + 1));
            }
            match (section.as_str(), key) {
                ("", "pr") => p.pr = value,
                ("", "ev") => p.ev = value,
                ("", "buffer_frames") => p.buffer_frames = value as u64,
                ("", "clustered_access") => p.clustered_access = value,
                ("", "residency") => p.residency = value != 0.0,
                ("", "memory_budget_pages") => p.memory_budget_pages = value as u64,
                ("", "default_fix_iterations") => p.default_fix_iterations = value,
                ("", "default_selectivity") => p.default_selectivity = value,
                ("weights", "seq_page") => p.weights.seq_page = value,
                ("weights", "deref_page") => p.weights.deref_page = value,
                ("weights", "index_level") => p.weights.index_level = value,
                ("weights", "index_leaf") => p.weights.index_leaf = value,
                ("weights", "write_page") => p.weights.write_page = value,
                ("weights", "eval") => p.weights.eval = value,
                ("weights", "method") => p.weights.method = value,
                (s, k) => {
                    return Err(format!(
                        "line {}: unknown key `{}{}{}`",
                        lineno + 1,
                        s,
                        if s.is_empty() { "" } else { "." },
                        k
                    ))
                }
            }
        }
        Ok(p)
    }

    /// Effective breaker-resident capacity in pages: `buffer_frames`
    /// capped by the memory budget when one is set. Materializing
    /// breakers (fixpoint accumulators and deltas, nested-loop
    /// materialized inners) whose footprint stays under this stay hot;
    /// past it the executor spills and re-reads pay in full.
    pub fn breaker_frames(&self) -> f64 {
        let b = self.buffer_frames as f64;
        if self.memory_budget_pages == 0 {
            b
        } else {
            b.min(self.memory_budget_pages as f64)
        }
    }

    /// Render parameters in the snapshot format (what the calibration
    /// harness emits for check-in).
    pub fn render_snapshot(&self, header: &str) -> String {
        let w = &self.weights;
        format!(
            "# {header}\n\
             pr = {}\nev = {}\nbuffer_frames = {}\nclustered_access = {}\n\
             residency = {}\nmemory_budget_pages = {}\n\
             default_fix_iterations = {}\ndefault_selectivity = {}\n\n\
             [weights]\n\
             seq_page = {}\nderef_page = {}\nindex_level = {}\nindex_leaf = {}\n\
             write_page = {}\neval = {}\nmethod = {}\n",
            self.pr,
            self.ev,
            self.buffer_frames,
            self.clustered_access,
            if self.residency { 1 } else { 0 },
            self.memory_budget_pages,
            self.default_fix_iterations,
            self.default_selectivity,
            w.seq_page,
            w.deref_page,
            w.index_level,
            w.index_leaf,
            w.write_page,
            w.eval,
            w.method,
        )
    }
}
