//! Parallelism-aware cost term: predicting the payoff of `Exchange`/
//! `Merge` operators so the optimizer can choose a degree of
//! parallelism (DOP) per subtree instead of a global switch.
//!
//! The model is deliberately simple — the same philosophy as §4.6's
//! simplified cost formulas: a parallel subtree pays a fixed per-worker
//! startup (thread spawn, per-worker buffer view, operator-tree
//! rebuild), divides its serial work over an *effective* worker count
//! (sub-linear: workers contend on the shared store), and pays a
//! per-row toll for the deterministic merge. All terms are in the cost
//! model's abstract time units (one page access ≈ `pr` ≈ 1.0).
//!
//! These parameters are *not* part of [`crate::CostParams`] and do not
//! appear in the calibrated snapshot: the calibration harness fits the
//! serial estimator against serial counters, and the snapshot parser
//! rejects unknown keys. Parallel overheads are machine facts (thread
//! spawn latency), not data facts, so they stay a plain `Default`.

/// Overhead constants of the parallel cost term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelParams {
    /// Fixed cost of forking one worker, abstract time units (page
    /// accesses): thread spawn, buffer-view fork, operator rebuild.
    pub startup: f64,
    /// Per-row cost of the deterministic in-order merge of worker
    /// outputs.
    pub merge_per_row: f64,
    /// Marginal efficiency of each additional worker: the effective
    /// worker count is `1 + (d - 1) * efficiency`, modeling contention
    /// on the shared snapshot and skewed page ranges.
    pub efficiency: f64,
}

impl Default for ParallelParams {
    fn default() -> Self {
        ParallelParams {
            startup: 40.0,
            merge_per_row: 0.002,
            efficiency: 0.85,
        }
    }
}

/// Effective worker count at DOP `workers`: sub-linear in the marginal
/// efficiency, `1.0` at one worker.
pub fn effective_workers(workers: usize, p: &ParallelParams) -> f64 {
    1.0 + workers.saturating_sub(1) as f64 * p.efficiency
}

/// Predicted cost of running a subtree of serial cost `serial` (and
/// `rows` output rows) under an `Exchange` of `workers` workers.
/// `workers < 2` is the serial plan: no overhead, no speedup.
pub fn parallel_cost(serial: f64, rows: f64, workers: usize, p: &ParallelParams) -> f64 {
    if workers < 2 {
        return serial;
    }
    p.startup * workers as f64
        + serial / effective_workers(workers, p)
        + p.merge_per_row * rows.max(0.0)
}

/// Predicted cost of running union legs of serial costs `legs` as a
/// leg-parallel `Merge` emitting `rows` rows: every leg forks a worker,
/// the slowest leg bounds the wall, the merge toll is per output row.
pub fn merge_cost(legs: &[f64], rows: f64, p: &ParallelParams) -> f64 {
    p.startup * legs.len() as f64
        + legs.iter().fold(0.0f64, |a, &b| a.max(b))
        + p.merge_per_row * rows.max(0.0)
}

/// Choose the cost-minimal DOP for a subtree: the argmin of
/// [`parallel_cost`] over `1..=max_workers`. Returns `(dop, cost)`;
/// `dop == 1` means parallelism does not pay for this subtree.
pub fn choose_dop(serial: f64, rows: f64, max_workers: usize, p: &ParallelParams) -> (usize, f64) {
    let mut best = (1usize, serial);
    for d in 2..=max_workers {
        let c = parallel_cost(serial, rows, d, p);
        if c < best.1 {
            best = (d, c);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_dop_is_identity() {
        let p = ParallelParams::default();
        assert_eq!(parallel_cost(1000.0, 50.0, 1, &p), 1000.0);
        assert_eq!(parallel_cost(1000.0, 50.0, 0, &p), 1000.0);
    }

    #[test]
    fn tiny_subtrees_stay_serial() {
        let p = ParallelParams::default();
        let (d, c) = choose_dop(10.0, 5.0, 8, &p);
        assert_eq!(d, 1);
        assert_eq!(c, 10.0);
    }

    #[test]
    fn large_subtrees_choose_more_workers() {
        let p = ParallelParams::default();
        let (d_small, _) = choose_dop(500.0, 10.0, 8, &p);
        let (d_large, c_large) = choose_dop(50_000.0, 10.0, 8, &p);
        assert!(d_large >= d_small, "{d_large} >= {d_small}");
        assert!(d_large >= 2);
        assert!(c_large < 50_000.0);
    }

    #[test]
    fn dop_is_capped_by_max_workers() {
        let p = ParallelParams::default();
        let (d, _) = choose_dop(1e9, 10.0, 3, &p);
        assert_eq!(d, 3);
    }

    #[test]
    fn effective_workers_sublinear() {
        let p = ParallelParams::default();
        assert_eq!(effective_workers(1, &p), 1.0);
        let e4 = effective_workers(4, &p);
        assert!(e4 > 1.0 && e4 < 4.0, "{e4}");
    }

    #[test]
    fn merge_cost_bounded_by_slowest_leg_plus_overhead() {
        let p = ParallelParams::default();
        let c = merge_cost(&[800.0, 300.0], 100.0, &p);
        assert!(c >= 800.0);
        assert!(c < 1100.0, "{c} should beat the 1100 serial sum");
    }
}
