//! Shared NaN/∞ guards for cardinality and cost figures.
//!
//! The point-estimate side (CM001/CM002/CM003 clamping in the cost
//! model) and the interval side (`oorq-analysis` directed rounding) must
//! agree on how degenerate arithmetic is neutralized, so both use these
//! helpers.

/// Sanitize a cardinality estimate: degenerate arithmetic (NaN from
/// 0·∞, negative from mis-set statistics) collapses to zero instead of
/// poisoning every downstream estimate — CM001 is provable, not merely
/// checked.
pub fn sane_rows(r: f64) -> f64 {
    if r.is_finite() && r > 0.0 {
        r
    } else {
        0.0
    }
}

/// Guard an interval *lower* endpoint: rounding may only move it down,
/// so anything degenerate (NaN, negative, ±∞) collapses to `0.0` —
/// identical to the point-estimate clamp.
pub fn guard_lo(x: f64) -> f64 {
    sane_rows(x)
}

/// Guard an interval *upper* endpoint: rounding may only move it up, so
/// NaN (unknown) widens to `+∞` and negative garbage collapses to
/// `0.0`; a genuine `+∞` (unbounded) is kept.
pub fn guard_hi(x: f64) -> f64 {
    if x.is_nan() {
        f64::INFINITY
    } else if x < 0.0 {
        0.0
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sane_rows_clamps_degenerate() {
        assert_eq!(sane_rows(f64::NAN), 0.0);
        assert_eq!(sane_rows(-3.0), 0.0);
        assert_eq!(sane_rows(f64::INFINITY), 0.0);
        assert_eq!(sane_rows(2.5), 2.5);
    }

    #[test]
    fn guards_are_directed() {
        assert_eq!(guard_lo(f64::NAN), 0.0);
        assert_eq!(guard_lo(f64::INFINITY), 0.0);
        assert_eq!(guard_hi(f64::NAN), f64::INFINITY);
        assert_eq!(guard_hi(f64::INFINITY), f64::INFINITY);
        assert_eq!(guard_hi(-1.0), 0.0);
        assert!(guard_lo(7.0) <= guard_hi(7.0));
    }
}
