//! Figure 5 fidelity tests: under [`CostParams::paper_mode`] (pr = ev
//! = 1, no buffer, no clustering discount, no residency modeling,
//! identity weights) the estimator must reproduce the paper's cost
//! formulas verbatim — hand-computed examples per operator, plus a
//! seeded property test that costs are monotone in input cardinality,
//! and round-trip coverage of the calibration snapshot format.

use std::sync::Arc;

use oorq_datagen::{MusicConfig, MusicDb};
use oorq_prng::Prng;
use oorq_pt::Pt;
use oorq_query::paper::music_catalog;
use oorq_query::Expr;
use oorq_storage::DbStats;

use crate::*;

fn setup(cfg: MusicConfig) -> (MusicDb, DbStats) {
    let cat = Arc::new(music_catalog());
    let m = MusicDb::generate(cat, cfg);
    let stats = DbStats::collect(&m.db);
    (m, stats)
}

fn paper_model<'a>(m: &'a MusicDb, stats: &'a DbStats) -> CostModel<'a> {
    CostModel::new(
        m.db.catalog(),
        m.db.physical(),
        stats,
        CostParams::paper_mode(),
    )
    .with_temp("Influencer", m.influencer_fields())
}

/// Figure 5 `Sel_selpred(C)` with sequential access: scan every page,
/// evaluate the predicate once per object — `|C| · pr + ‖C‖ · ev`.
#[test]
fn paper_mode_sel_is_pages_plus_one_eval_per_row() {
    let (m, stats) = setup(MusicConfig::default());
    let cm = paper_model(&m, &stats);
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let s = stats.entity(e).unwrap();
    let plan = Pt::sel(
        Expr::path("x", &["name"]).eq(Expr::text("Bach")),
        Pt::entity(e, "x"),
    );
    let pc = cm.cost(&plan).unwrap();
    assert_eq!(pc.cost.io, s.pages as f64, "io = |C| pages");
    assert_eq!(pc.cost.cpu, s.cardinality as f64, "cpu = ‖C‖ evals");
}

/// Figure 5 `EJ_pred` by nested loop with no buffer: the outer scans
/// once, the inner is rescanned per outer row, every pair is evaluated
/// — `|L| + ‖L‖ · |R|` pages and `‖L‖ · ‖R‖` evaluations.
#[test]
fn paper_mode_ej_nested_loop_rescans_inner_per_outer_row() {
    let (m, stats) = setup(MusicConfig::default());
    let cm = paper_model(&m, &stats);
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let s = stats.entity(e).unwrap();
    let (rows, pages) = (s.cardinality as f64, s.pages as f64);
    let join = Pt::ej(
        Expr::path("l", &["master"]).eq(Expr::var("r")),
        Pt::entity(e, "l"),
        Pt::entity(e, "r"),
    );
    let pc = cm.cost(&join).unwrap();
    let expected_io = pages + pages + (rows - 1.0) * pages;
    assert_eq!(pc.cost.io, expected_io, "outer + inner + rescans");
    assert_eq!(pc.cost.cpu, rows * rows, "one eval per pair");
}

/// Figure 5 `IJ_Ai(C)` without clustering: scan the operand, then one
/// dereference per fanned-out member — sub-objects are not clustered in
/// the §4.6 model, so every dereference pays a full page access.
#[test]
fn paper_mode_ij_charges_one_page_per_dereference() {
    let (m, stats) = setup(MusicConfig::default());
    let cm = paper_model(&m, &stats);
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let t = m.db.physical().entities_of_class(m.composition)[0];
    let s = stats.entity(e).unwrap();
    let ij = Pt::IJ {
        on: Expr::path("x", &["works"]),
        step: oorq_pt::IjStep::class_attr(m.db.catalog(), m.composer, m.works_attr),
        out: "w".into(),
        input: Box::new(Pt::entity(e, "x")),
        target: Box::new(Pt::entity(t, "wt")),
    };
    let pc = cm.cost(&ij).unwrap();
    // Output cardinality is ‖C‖ · fanout(works); each output row cost
    // one dereference on top of the scan.
    assert_eq!(
        pc.cost.io,
        s.pages as f64 + pc.rows,
        "scan + one page per member"
    );
    assert_eq!(pc.cost.cpu, 0.0, "a pure traversal evaluates nothing");
}

/// Figure 5 `PIJ_pathInd(C)`: one index descent per operand object plus
/// the expected share of leaves — `‖C‖ · (nblevels + nbleaves / ‖C₁‖)`.
#[test]
fn paper_mode_pij_follows_probe_formula() {
    let (mut m, _) = setup(MusicConfig::default());
    let composer = m.composer;
    let composition = m.composition;
    let idx = m.db.physical_mut().add_index(
        oorq_storage::IndexKindDesc::Path {
            path: vec![(composer, m.works_attr), (composition, m.instruments_attr)],
        },
        oorq_storage::IndexStats {
            nblevels: 3,
            nbleaves: 40,
        },
    );
    let stats = DbStats::collect(&m.db);
    let cm = paper_model(&m, &stats);
    let e = m.db.physical().entities_of_class(composer)[0];
    let ce = m.db.physical().entities_of_class(composition)[0];
    let ie = m.db.physical().entities_of_class(m.instrument)[0];
    let pij = Pt::PIJ {
        index: idx,
        on: Expr::var("x"),
        outs: vec!["w".into(), "ins".into()],
        input: Box::new(Pt::entity(e, "x")),
        targets: vec![Pt::entity(ce, "ct"), Pt::entity(ie, "it")],
    };
    let pc = cm.cost(&pij).unwrap();
    let n = m.composer_count() as f64;
    let scan = stats.entity(e).unwrap().pages as f64;
    let expected = scan + n * (3.0 + 40.0 / n);
    assert!(
        (pc.cost.io - expected).abs() < 1e-6,
        "got {}, want {expected}",
        pc.cost.io
    );
    assert_eq!(pc.cost.cpu, 0.0, "probes evaluate no predicates");
}

fn influencer_fix_plan(m: &MusicDb) -> Pt {
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let base = Pt::proj(
        vec![
            ("master".into(), Expr::path("x", &["master"])),
            ("disciple".into(), Expr::var("x")),
            ("gen".into(), Expr::int(1)),
        ],
        Pt::sel(
            Expr::path("x", &["master"]).ne(Expr::Lit(oorq_query::Literal::Null)),
            Pt::entity(e, "x"),
        ),
    );
    let rec = Pt::proj(
        vec![
            ("master".into(), Expr::var("i.master")),
            ("disciple".into(), Expr::var("x")),
            ("gen".into(), Expr::var("i.gen").add(Expr::int(1))),
        ],
        Pt::ej(
            Expr::var("i.disciple").eq(Expr::path("x", &["master"])),
            Pt::temp("Influencer", "i"),
            Pt::entity(e, "x"),
        ),
    );
    Pt::fix("Influencer", Pt::union(base, rec))
}

/// Figure 5 `Fix(T, P)`: the plan total is exactly the sum of the
/// per-node breakdown (base + iteration-scaled recursive side +
/// materialization writes), and the fixpoint node itself charges only
/// the writes — no phantom dedup evaluations.
#[test]
fn paper_mode_fix_total_is_breakdown_sum_plus_writes() {
    let (m, stats) = setup(MusicConfig {
        chains: 2,
        chain_len: 8,
        ..Default::default()
    });
    let cm = paper_model(&m, &stats);
    let pc = cm.cost(&influencer_fix_plan(&m)).unwrap();
    let sum = pc
        .breakdown
        .iter()
        .fold(Cost::zero(), |acc, l| acc + l.cost);
    assert!(
        (pc.cost.io - sum.io).abs() < 1e-9 && (pc.cost.cpu - sum.cpu).abs() < 1e-9,
        "total {:?} must equal breakdown sum {:?}",
        pc.cost,
        sum
    );
    let fix = pc
        .breakdown
        .iter()
        .find(|l| l.kind == OpKind::Fix)
        .expect("breakdown has the Fix node");
    assert!(fix.feat.write_pages > 0.0, "materialization writes charged");
    assert_eq!(fix.feat.evals, 0.0, "no phantom dedup evaluations");
    assert_eq!(fix.cost.io, fix.feat.write_pages, "Fix io is its writes");
}

/// Seeded property: under the paper-mode formulas, the cost of a fixed
/// plan shape is monotone non-decreasing in the operand cardinality.
#[test]
fn paper_mode_cost_is_monotone_in_cardinality() {
    let mut rng = Prng::new(0x00f1_65f1_de11_7e57);
    for trial in 0..8 {
        let chains = rng.range_u32(2, 8);
        let grow = rng.range_u32(2, 6);
        let seed = rng.range_u32(1, 1 << 20) as u64;
        let small = setup(MusicConfig {
            chains,
            chain_len: 4,
            seed,
            ..Default::default()
        });
        let large = setup(MusicConfig {
            chains: chains + grow,
            chain_len: 4,
            seed,
            ..Default::default()
        });
        let plan = |m: &MusicDb| {
            let e = m.db.physical().entities_of_class(m.composer)[0];
            Pt::ej(
                Expr::path("l", &["master"]).eq(Expr::var("r")),
                Pt::sel(
                    Expr::path("l", &["master"]).ne(Expr::Lit(oorq_query::Literal::Null)),
                    Pt::entity(e, "l"),
                ),
                Pt::entity(e, "r"),
            )
        };
        let params = CostParams::paper_mode();
        let c_small = paper_model(&small.0, &small.1)
            .cost(&plan(&small.0))
            .unwrap();
        let c_large = paper_model(&large.0, &large.1)
            .cost(&plan(&large.0))
            .unwrap();
        assert!(
            c_large.cost.total(&params) >= c_small.cost.total(&params),
            "trial {trial}: cost must not shrink as the operand grows \
             ({} composers -> {}): {:?} vs {:?}",
            chains,
            chains + grow,
            c_small.cost,
            c_large.cost
        );
    }
}

/// The calibration snapshot format round-trips, including the
/// `residency` switch.
#[test]
fn snapshot_round_trips_including_residency() {
    let p = CostParams {
        pr: 2.5,
        ev: 0.125,
        buffer_frames: 48,
        clustered_access: 0.2,
        residency: true,
        default_fix_iterations: 7.0,
        default_selectivity: 0.25,
        weights: CostWeights {
            seq_page: 0.75,
            deref_page: 1.25,
            index_level: 1.5,
            index_leaf: 0.0625,
            write_page: 3.5,
            eval: 1.125,
            method: 2.25,
        },
        ..CostParams::default()
    };
    let rendered = p.render_snapshot("round-trip test");
    let q = CostParams::parse_snapshot(&rendered).unwrap();
    assert_eq!(rendered, q.render_snapshot("round-trip test"));
    assert!(q.residency);
}

/// The checked-in snapshot loads, switches residency modeling on, and
/// carries weights inside the fit clamp.
#[test]
fn calibrated_snapshot_is_well_formed() {
    let p = CostParams::calibrated();
    assert!(p.residency, "the snapshot enables residency modeling");
    let w = p.weights;
    for (name, v) in [
        ("seq_page", w.seq_page),
        ("deref_page", w.deref_page),
        ("index_level", w.index_level),
        ("index_leaf", w.index_leaf),
        ("write_page", w.write_page),
        ("eval", w.eval),
        ("method", w.method),
    ] {
        assert!(
            v.is_finite() && (0.05..=20.0).contains(&v),
            "{name} = {v} outside the fit clamp"
        );
    }
}

/// Malformed snapshots are rejected with line-numbered errors.
#[test]
fn snapshot_parser_rejects_bad_input() {
    assert!(CostParams::parse_snapshot("pr = 1\nbogus_key = 2\n").is_err());
    assert!(CostParams::parse_snapshot("pr = inf\n").is_err());
    assert!(CostParams::parse_snapshot("pr 1\n").is_err());
    assert!(CostParams::parse_snapshot("[weights]\nseq_page = nope\n").is_err());
}
