//! The cost model of §3.2: cost formulas for every PT node over the
//! physical-schema statistics, combining I/O and CPU time.
//!
//! Two layers are provided:
//! - [`CostModel`] — the general estimator predicting the pipelined
//!   executor of `oorq-exec` (clustering-, buffer- and index-aware);
//! - [`paper_mode`] — symbolic cost expressions reproducing Figure 5's
//!   formula table and the §4.6 simplified model behind Figure 7.

mod error;
mod features;
pub mod guard;
mod model;
pub mod paper_mode;
mod parallel;
mod params;
mod profiles;

pub use error::CostError;
pub use features::{CostFeatures, OpKind};
pub use guard::{guard_hi, guard_lo, sane_rows};
pub use model::{CostModel, FixCurve, NodeCost, PlanCost};
pub use parallel::{choose_dop, effective_workers, merge_cost, parallel_cost, ParallelParams};
pub use params::{Cost, CostParams, CostWeights};
pub use profiles::{FixProfile, FixProfiles};

#[cfg(test)]
mod fig5_tests;
#[cfg(test)]
mod tests;
