//! Fixpoint cardinality profiles: observed iteration counts and fitted
//! geometric delta-decay curves, fed back from execution traces.
//!
//! The default estimator guesses one global iteration count
//! (`max_chain_depth` / `default_fix_iterations`) and assumes *flat*
//! per-iteration deltas, but the paper's §3.2 point (Figure 5:
//! `Fix(T,P) = Σᵢ cost(Exp(Tᵢ))`) is that push decisions hinge on
//! per-iteration volumes. The feedback harness (`oorq-bench`) replays
//! the scenario corpus, joins each fixpoint's predicted `NodeCost` line
//! to its observed delta curve (`ExecReport::fix_deltas`, keyed per
//! fixpoint node since the attribution fix), fits one [`FixProfile`]
//! per (scenario, temporary) and persists them as
//! `crates/cost/fix_profiles.toml` — the same TOML subset as
//! `calibrated.toml`, loaded by `CostParams::calibrated()`.

use std::collections::BTreeMap;

/// A fitted delta-size curve for one (scenario, temporary) fixpoint:
/// everything the estimator needs to model the semi-naive iteration
/// structure is expressed *relative* to quantities it can compute
/// statically (base-case row estimate, chain-depth statistic), so a
/// profile fitted at one data scale transfers to neighbouring scales.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixProfile {
    /// Observed rec-side pass count (delta-curve length minus the seed
    /// entry; the final zero-delta convergence check counts as a pass).
    pub iterations: f64,
    /// Passes per unit of the chain-depth statistic the default
    /// estimator consults (`max_chain_depth`, falling back to
    /// `default_fix_iterations`); lets the profile extrapolate when the
    /// statistic moves.
    pub iters_per_depth: f64,
    /// Observed seed delta over the estimator's base-case row estimate.
    pub seed_scale: f64,
    /// Geometric per-iteration decay ratio of delta sizes (`1.0` = flat
    /// curve; `< 1.0` = shrinking frontier).
    pub decay: f64,
    /// Total observed delta mass (sum over the curve, seed included).
    pub mass: f64,
    /// Observed mass over the observed seed (dimensionless, so it
    /// transfers across data scales): pins the reconstructed curve's
    /// *total*, which the geometric `decay` endpoints-fit alone
    /// under-counts for non-geometric (e.g. linearly decaying)
    /// frontiers. `0` marks a legacy profile with no recorded ratio;
    /// the estimator then trusts the geometric sum.
    pub mass_scale: f64,
}

impl FixProfile {
    /// Fit a profile from one observed delta curve (seed first, final
    /// zero entry on convergence), the estimator's base-case row
    /// estimate and the chain-depth statistic it would consult.
    /// Returns `None` for curves too degenerate to model (empty, or a
    /// zero seed).
    pub fn fit(deltas: &[u64], base_rows: f64, depth: f64) -> Option<FixProfile> {
        let seed = *deltas.first()? as f64;
        if seed <= 0.0 {
            return None;
        }
        let iterations = (deltas.len() - 1).max(1) as f64;
        // Geometric ratio through the last *nonzero* point: with the
        // convergence zero excluded, `(d_k / d_0)^(1/k)` matches the
        // endpoints exactly and interpolates the rest.
        let last_nonzero = deltas.iter().rposition(|&d| d > 0).unwrap_or(0);
        let decay = if last_nonzero == 0 {
            1.0
        } else {
            let ratio = deltas[last_nonzero] as f64 / seed;
            ratio.powf(1.0 / last_nonzero as f64)
        };
        let mass: f64 = deltas.iter().map(|&d| d as f64).sum();
        Some(FixProfile {
            iterations,
            iters_per_depth: iterations / depth.max(1.0),
            seed_scale: seed / base_rows.max(1.0),
            decay: decay.clamp(0.01, 10.0),
            mass,
            mass_scale: mass / seed,
        })
    }
}

/// The persisted profile set, keyed `scenario/temp` (e.g.
/// `music0/fig3/nopush/Influencer`). [`FixProfiles::aggregate`] folds
/// all scenarios of one temporary into the single profile the estimator
/// uses.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FixProfiles {
    entries: BTreeMap<String, FixProfile>,
}

impl FixProfiles {
    /// No profiles: the estimator falls back to the flat-delta default.
    pub fn empty() -> FixProfiles {
        FixProfiles::default()
    }

    /// True when no profiles are loaded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of (scenario, temp) profiles.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Insert or replace the profile under `scenario/temp` key.
    pub fn insert(&mut self, key: impl Into<String>, profile: FixProfile) {
        self.entries.insert(key.into(), profile);
    }

    /// Exact lookup by full `scenario/temp` key.
    pub fn get(&self, key: &str) -> Option<&FixProfile> {
        self.entries.get(key)
    }

    /// Iterate `(key, profile)` in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &FixProfile)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The profile the estimator uses for a temporary under a scenario
    /// scope: the exact `scope/temp` entry when the scope is known (a
    /// harness replaying a named scenario), otherwise the per-temp
    /// [`FixProfiles::aggregate`]. Exact entries dominate because a
    /// scenario's own observed curve beats a cross-scenario median; the
    /// aggregate remains the answer for unseen scopes.
    pub fn lookup(&self, scope: &str, temp: &str) -> Option<FixProfile> {
        if !scope.is_empty() {
            if let Some(p) = self.get(&format!("{scope}/{temp}")) {
                return Some(*p);
            }
        }
        self.aggregate(temp)
    }

    /// The scope-free profile for a temporary: the per-field
    /// *median* over every scenario that exercised this temp (key equal
    /// to `temp` or ending in `/temp`). Medians keep one outlier
    /// scenario from dragging the whole estimate.
    pub fn aggregate(&self, temp: &str) -> Option<FixProfile> {
        let suffix = format!("/{temp}");
        let matching: Vec<&FixProfile> = self
            .entries
            .iter()
            .filter(|(k, _)| k.as_str() == temp || k.ends_with(&suffix))
            .map(|(_, v)| v)
            .collect();
        if matching.is_empty() {
            return None;
        }
        let med = |f: fn(&FixProfile) -> f64| -> f64 {
            let mut vals: Vec<f64> = matching.iter().map(|p| f(p)).collect();
            vals.sort_by(|a, b| a.total_cmp(b));
            let n = vals.len();
            if n % 2 == 1 {
                vals[n / 2]
            } else {
                (vals[n / 2 - 1] + vals[n / 2]) / 2.0
            }
        };
        Some(FixProfile {
            iterations: med(|p| p.iterations),
            iters_per_depth: med(|p| p.iters_per_depth),
            seed_scale: med(|p| p.seed_scale),
            decay: med(|p| p.decay),
            mass: med(|p| p.mass),
            mass_scale: med(|p| p.mass_scale),
        })
    }

    /// Parse the `fix_profiles.toml` snapshot format: `#` comments,
    /// `[scenario/temp]` section headers, `key = value` lines. Same
    /// deliberately tiny TOML subset as `calibrated.toml`, with
    /// line-numbered errors.
    pub fn parse(src: &str) -> Result<FixProfiles, String> {
        let mut out = FixProfiles::default();
        let mut section: Option<(String, FixProfile)> = None;
        let flush = |section: &mut Option<(String, FixProfile)>, out: &mut FixProfiles| {
            if let Some((key, p)) = section.take() {
                out.entries.insert(key, p);
            }
        };
        for (lineno, raw) in src.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                flush(&mut section, &mut out);
                let name = name.trim();
                if name.is_empty() {
                    return Err(format!("line {}: empty section name", lineno + 1));
                }
                section = Some((
                    name.to_string(),
                    FixProfile {
                        iterations: 1.0,
                        iters_per_depth: 1.0,
                        seed_scale: 1.0,
                        decay: 1.0,
                        mass: 0.0,
                        mass_scale: 0.0,
                    },
                ));
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let key = key.trim();
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad number: {e}", lineno + 1))?;
            if !value.is_finite() {
                return Err(format!("line {}: non-finite value", lineno + 1));
            }
            let Some((_, p)) = section.as_mut() else {
                return Err(format!(
                    "line {}: `{key}` outside a [scenario/temp] section",
                    lineno + 1
                ));
            };
            match key {
                "iterations" => p.iterations = value,
                "iters_per_depth" => p.iters_per_depth = value,
                "seed_scale" => p.seed_scale = value,
                "decay" => p.decay = value,
                "mass" => p.mass = value,
                "mass_scale" => p.mass_scale = value,
                k => return Err(format!("line {}: unknown key `{k}`", lineno + 1)),
            }
        }
        flush(&mut section, &mut out);
        Ok(out)
    }

    /// Render in the snapshot format (what `reproduce feedback-fit`
    /// emits for check-in). Round-trips through [`FixProfiles::parse`].
    pub fn render(&self, header: &str) -> String {
        let mut out = format!("# {header}\n");
        for (key, p) in &self.entries {
            out.push_str(&format!(
                "\n[{key}]\niterations = {}\niters_per_depth = {}\nseed_scale = {}\n\
                 decay = {}\nmass = {}\nmass_scale = {}\n",
                p.iterations, p.iters_per_depth, p.seed_scale, p.decay, p.mass, p.mass_scale,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_curve_shape() {
        // Seed 8, geometric halving, convergence zero at the end.
        let p = FixProfile::fit(&[8, 4, 2, 1, 0], 10.0, 4.0).unwrap();
        assert_eq!(p.iterations, 4.0);
        assert_eq!(p.iters_per_depth, 1.0);
        assert!((p.seed_scale - 0.8).abs() < 1e-12);
        // (1/8)^(1/3) = 0.5: the ratio through the last nonzero point.
        assert!((p.decay - 0.5).abs() < 1e-12, "{}", p.decay);
        assert_eq!(p.mass, 15.0);
    }

    #[test]
    fn fit_rejects_degenerate_curves() {
        assert!(FixProfile::fit(&[], 10.0, 4.0).is_none());
        assert!(FixProfile::fit(&[0, 3, 0], 10.0, 4.0).is_none());
        // A seed-only curve is flat by definition.
        let p = FixProfile::fit(&[5], 10.0, 4.0).unwrap();
        assert_eq!(p.decay, 1.0);
        assert_eq!(p.iterations, 1.0);
    }

    fn sample() -> FixProfiles {
        let mut ps = FixProfiles::empty();
        ps.insert(
            "music0/fig3/nopush/Influencer",
            FixProfile {
                iterations: 2.0,
                iters_per_depth: 1.0,
                seed_scale: 1.125,
                decay: 0.5,
                mass: 9.0,
                mass_scale: 2.0,
            },
        );
        ps.insert(
            "music1/fig3/nopush/Influencer",
            FixProfile {
                iterations: 4.0,
                iters_per_depth: 1.0,
                seed_scale: 1.25,
                decay: 0.63,
                mass: 40.0,
                mass_scale: 4.0,
            },
        );
        ps.insert(
            "parts0/nopush/Contains",
            FixProfile {
                iterations: 3.0,
                iters_per_depth: 0.75,
                seed_scale: 2.0,
                decay: 0.7,
                mass: 68.0,
                mass_scale: 3.4,
            },
        );
        ps
    }

    #[test]
    fn snapshot_round_trips() {
        let ps = sample();
        let rendered = ps.render("test header");
        let parsed = FixProfiles::parse(&rendered).unwrap();
        assert_eq!(ps, parsed);
        // And the rendered form is stable under a second round trip.
        assert_eq!(rendered, parsed.render("test header"));
    }

    #[test]
    fn parse_accepts_comments_defaults_and_blank_lines() {
        let ps = FixProfiles::parse(
            "# leading comment\n\n[a/T] # trailing comment\niterations = 3\n\n[b/T]\n",
        )
        .unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.get("a/T").unwrap().iterations, 3.0);
        // Unset keys take the flat-curve defaults.
        let b = ps.get("b/T").unwrap();
        assert_eq!((b.iterations, b.decay, b.mass), (1.0, 1.0, 0.0));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        for (src, want) in [
            ("[a/T]\nnope\n", "line 2: expected `key = value`"),
            ("[]\n", "line 1: empty section name"),
            ("[a/T]\niterations = abc\n", "line 2: bad number"),
            ("[a/T]\ndecay = inf\n", "line 2: non-finite value"),
            (
                "mass = 3\n",
                "line 1: `mass` outside a [scenario/temp] section",
            ),
            ("[a/T]\n\nwat = 3\n", "line 3: unknown key `wat`"),
        ] {
            let err = FixProfiles::parse(src).unwrap_err();
            assert!(err.starts_with(want), "{src:?}: got {err:?}, want {want:?}");
        }
    }

    #[test]
    fn aggregate_takes_per_field_medians_per_temp() {
        let ps = sample();
        let inf = ps.aggregate("Influencer").unwrap();
        // Two Influencer entries: even-count medians average the pair.
        assert_eq!(inf.iterations, 3.0);
        assert!((inf.seed_scale - 1.1875).abs() < 1e-12);
        let contains = ps.aggregate("Contains").unwrap();
        assert_eq!(contains.iterations, 3.0);
        assert!(ps.aggregate("Nope").is_none());
    }

    #[test]
    fn lookup_prefers_exact_scope_over_aggregate() {
        let ps = sample();
        let exact = ps.lookup("music0/fig3/nopush", "Influencer").unwrap();
        assert_eq!(exact.iterations, 2.0);
        // Unknown scope and empty scope both fall back to the aggregate.
        assert_eq!(
            ps.lookup("music9/other", "Influencer").unwrap().iterations,
            3.0
        );
        assert_eq!(ps.lookup("", "Influencer").unwrap().iterations, 3.0);
    }
}
