//! Cost-model errors.

use std::fmt;

use oorq_pt::PtError;

/// Errors raised during cost estimation.
#[derive(Debug, Clone, PartialEq)]
pub enum CostError {
    /// A temporary's shape was not registered with the model.
    UnknownTemp(String),
    /// A temporary was addressed through an `Entity` leaf.
    TempAsEntity(String),
    /// A `Fix` whose "recursive" side never references the temporary.
    NotRecursive(String),
    /// A needed statistic is missing.
    MissingStats,
    /// Structural error in the plan.
    Pt(PtError),
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::UnknownTemp(n) => write!(f, "unknown temporary `{n}`"),
            CostError::TempAsEntity(n) => write!(f, "temporary `{n}` used as entity"),
            CostError::NotRecursive(n) => {
                write!(f, "Fix({n}, ...) has no recursive reference to `{n}`")
            }
            CostError::MissingStats => write!(f, "missing statistics"),
            CostError::Pt(e) => write!(f, "plan structure: {e}"),
        }
    }
}

impl std::error::Error for CostError {}

impl From<PtError> for CostError {
    fn from(e: PtError) -> Self {
        CostError::Pt(e)
    }
}
