//! Cost-model tests: each Figure 5 formula exercised on generated data.

use std::sync::Arc;

use oorq_datagen::{MusicConfig, MusicDb};
use oorq_pt::Pt;
use oorq_query::paper::music_catalog;
use oorq_query::Expr;
use oorq_storage::DbStats;

use crate::*;

fn setup(cfg: MusicConfig) -> (MusicDb, DbStats) {
    let cat = Arc::new(music_catalog());
    let m = MusicDb::generate(cat, cfg);
    let stats = DbStats::collect(&m.db);
    (m, stats)
}

fn model<'a>(m: &'a MusicDb, stats: &'a DbStats) -> CostModel<'a> {
    CostModel::new(
        m.db.catalog(),
        m.db.physical(),
        stats,
        CostParams::default(),
    )
    .with_temp("Influencer", m.influencer_fields())
}

#[test]
fn entity_scan_costs_its_pages() {
    let (m, stats) = setup(MusicConfig::default());
    let cm = model(&m, &stats);
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let pc = cm.cost(&Pt::entity(e, "x")).unwrap();
    let s = stats.entity(e).unwrap();
    assert_eq!(pc.cost.io, s.pages as f64);
    assert_eq!(pc.rows, s.cardinality as f64);
    assert_eq!(pc.cost.cpu, 0.0);
}

#[test]
fn selection_reduces_cardinality_by_selectivity() {
    let (m, stats) = setup(MusicConfig {
        chains: 10,
        chain_len: 10,
        ..Default::default()
    });
    let cm = model(&m, &stats);
    let e = m.db.physical().entities_of_class(m.composer)[0];
    // name is a key: equality selectivity 1/100.
    let sel = Pt::sel(
        Expr::path("x", &["name"]).eq(Expr::text("Bach")),
        Pt::entity(e, "x"),
    );
    let pc = cm.cost(&sel).unwrap();
    assert!(
        (pc.rows - 1.0).abs() < 0.2,
        "expected ~1 row, got {}",
        pc.rows
    );
    // CPU: one evaluation per scanned row.
    assert!(pc.cost.cpu >= 100.0);
}

#[test]
fn deep_path_predicate_costs_dereferences() {
    let (m, stats) = setup(MusicConfig::default());
    let cm = model(&m, &stats);
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let cheap = Pt::sel(
        Expr::path("x", &["name"]).eq(Expr::text("Bach")),
        Pt::entity(e, "x"),
    );
    // The §2.3 expensive selection: works.instruments.name.
    let expensive = Pt::sel(
        Expr::path("x", &["works", "instruments", "name"]).eq(Expr::text("harpsichord")),
        Pt::entity(e, "x"),
    );
    let c1 = cm.cost(&cheap).unwrap();
    let c2 = cm.cost(&expensive).unwrap();
    assert!(
        c2.cost.io > c1.cost.io * 2.0,
        "path predicate must cost far more I/O: {} vs {}",
        c2.cost.io,
        c1.cost.io
    );
}

#[test]
fn computed_attribute_charges_method_cost() {
    let (m, stats) = setup(MusicConfig::default());
    let cm = model(&m, &stats);
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let on_stored = Pt::sel(
        Expr::path("x", &["birth_year"]).ge(Expr::int(1700)),
        Pt::entity(e, "x"),
    );
    // `age` is computed with eval_cost 2.0 per invocation.
    let on_method = Pt::sel(
        Expr::path("x", &["age"]).ge(Expr::int(40)),
        Pt::entity(e, "x"),
    );
    let c1 = cm.cost(&on_stored).unwrap();
    let c2 = cm.cost(&on_method).unwrap();
    assert!(
        c2.cost.cpu > c1.cost.cpu,
        "{} vs {}",
        c2.cost.cpu,
        c1.cost.cpu
    );
}

#[test]
fn ij_cost_reflects_clustering() {
    let cat = Arc::new(music_catalog());
    let unclustered = MusicDb::generate(
        Arc::clone(&cat),
        MusicConfig {
            clustered: false,
            ..Default::default()
        },
    );
    let clustered = MusicDb::generate(
        cat,
        MusicConfig {
            clustered: true,
            ..Default::default()
        },
    );
    let su = DbStats::collect(&unclustered.db);
    let sc = DbStats::collect(&clustered.db);
    let build = |m: &MusicDb| {
        let e = m.db.physical().entities_of_class(m.composer)[0];
        let t = m.db.physical().entities_of_class(m.composition)[0];
        Pt::IJ {
            on: Expr::path("x", &["works"]),
            step: oorq_pt::IjStep::class_attr(m.db.catalog(), m.composer, m.works_attr),
            out: "w".into(),
            input: Box::new(Pt::entity(e, "x")),
            target: Box::new(Pt::entity(t, "wt")),
        }
    };
    let mu = model(&unclustered, &su);
    let mc = model(&clustered, &sc);
    let cu = mu.cost(&build(&unclustered)).unwrap();
    let cc = mc.cost(&build(&clustered)).unwrap();
    assert!(
        cc.cost.io < cu.cost.io,
        "clustered IJ must be cheaper: {} vs {}",
        cc.cost.io,
        cu.cost.io
    );
    // Cardinality: composers * works fan-out either way.
    assert!((cu.rows - cc.rows).abs() < 1e-6);
    assert!((cu.rows - (unclustered.composer_count() as f64 * 3.0)).abs() < 1.0);
}

#[test]
fn pij_probe_follows_figure5_formula() {
    let (mut m, _) = setup(MusicConfig::default());
    // Register a works.instruments path index descriptor.
    let composer = m.composer;
    let composition = m.composition;
    let idx = m.db.physical_mut().add_index(
        oorq_storage::IndexKindDesc::Path {
            path: vec![(composer, m.works_attr), (composition, m.instruments_attr)],
        },
        oorq_storage::IndexStats {
            nblevels: 3,
            nbleaves: 40,
        },
    );
    let stats = DbStats::collect(&m.db);
    let cm = model(&m, &stats);
    let e = m.db.physical().entities_of_class(composer)[0];
    let ce = m.db.physical().entities_of_class(composition)[0];
    let ie = m.db.physical().entities_of_class(m.instrument)[0];
    let pij = Pt::PIJ {
        index: idx,
        on: Expr::var("x"),
        outs: vec!["w".into(), "ins".into()],
        input: Box::new(Pt::entity(e, "x")),
        targets: vec![Pt::entity(ce, "ct"), Pt::entity(ie, "it")],
    };
    let pc = cm.cost(&pij).unwrap();
    let n = m.composer_count() as f64;
    let scan = stats.entity(e).unwrap().pages as f64;
    let expected = scan + n * (3.0 + 40.0 / n);
    assert!(
        (pc.cost.io - expected).abs() < 1e-6,
        "Figure 5 PIJ formula: got {}, want {}",
        pc.cost.io,
        expected
    );
    // Output: composers * works * instruments fan-outs.
    assert!((pc.rows - n * 3.0 * 2.0).abs() < 1.0);
}

#[test]
fn nested_loop_rescans_depend_on_buffer() {
    let (m, stats) = setup(MusicConfig {
        chains: 10,
        chain_len: 10,
        ..Default::default()
    });
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let join = Pt::ej(
        Expr::path("l", &["master"]).eq(Expr::var("r")),
        Pt::entity(e, "l"),
        Pt::entity(e, "r"),
    );
    let small = CostParams {
        buffer_frames: 0,
        ..CostParams::default()
    };
    let large = CostParams {
        buffer_frames: 10_000,
        ..CostParams::default()
    };
    let cm_small = CostModel::new(m.db.catalog(), m.db.physical(), &stats, small);
    let cm_large = CostModel::new(m.db.catalog(), m.db.physical(), &stats, large);
    let c_small = cm_small.cost(&join).unwrap();
    let c_large = cm_large.cost(&join).unwrap();
    assert!(
        c_small.cost.io > c_large.cost.io * 10.0,
        "tiny buffer must force rescans: {} vs {}",
        c_small.cost.io,
        c_large.cost.io
    );
}

#[test]
fn fix_cost_scales_with_chain_depth() {
    let shallow = setup(MusicConfig {
        chains: 16,
        chain_len: 2,
        ..Default::default()
    });
    let deep = setup(MusicConfig {
        chains: 2,
        chain_len: 16,
        ..Default::default()
    });
    let fix_plan = |m: &MusicDb| {
        let e = m.db.physical().entities_of_class(m.composer)[0];
        let base = Pt::proj(
            vec![
                ("master".into(), Expr::path("x", &["master"])),
                ("disciple".into(), Expr::var("x")),
                ("gen".into(), Expr::int(1)),
            ],
            Pt::sel(
                Expr::path("x", &["master"]).ne(Expr::Lit(oorq_query::Literal::Null)),
                Pt::entity(e, "x"),
            ),
        );
        let rec = Pt::proj(
            vec![
                ("master".into(), Expr::var("i.master")),
                ("disciple".into(), Expr::var("x")),
                ("gen".into(), Expr::var("i.gen").add(Expr::int(1))),
            ],
            Pt::ej(
                Expr::var("i.disciple").eq(Expr::path("x", &["master"])),
                Pt::temp("Influencer", "i"),
                Pt::entity(e, "x"),
            ),
        );
        Pt::fix("Influencer", Pt::union(base, rec))
    };
    let cm_s = model(&shallow.0, &shallow.1);
    let cm_d = model(&deep.0, &deep.1);
    assert_eq!(cm_s.fix_iterations(), 1.0);
    assert_eq!(cm_d.fix_iterations(), 15.0);
    let cs = cm_s.cost(&fix_plan(&shallow.0)).unwrap();
    let cd = cm_d.cost(&fix_plan(&deep.0)).unwrap();
    // Same number of composers, but the deep DB iterates far more.
    assert!(
        cd.cost.io + cd.cost.cpu > 2.0 * (cs.cost.io + cs.cost.cpu),
        "deep: {:?} shallow: {:?}",
        cd.cost,
        cs.cost
    );
    // TC of chains: shallow = 16 pairs; deep = 2 * (15*16/2) = 240 pairs.
    assert!(cd.rows > cs.rows);
}

#[test]
fn fix_requires_recursive_union() {
    let (m, stats) = setup(MusicConfig::default());
    let cm = model(&m, &stats);
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let bad = Pt::fix("Influencer", Pt::entity(e, "x"));
    assert!(matches!(cm.cost(&bad), Err(CostError::Pt(_))));
    let not_rec = Pt::fix(
        "Influencer",
        Pt::union(Pt::entity(e, "x"), Pt::entity(e, "y")),
    );
    assert!(matches!(cm.cost(&not_rec), Err(CostError::NotRecursive(_))));
}

#[test]
fn unknown_temp_is_reported() {
    let (m, stats) = setup(MusicConfig::default());
    let cm = CostModel::new(
        m.db.catalog(),
        m.db.physical(),
        &stats,
        CostParams::default(),
    );
    let pt = Pt::temp("Nope", "n");
    assert_eq!(
        cm.cost(&pt).unwrap_err(),
        CostError::UnknownTemp("Nope".into())
    );
}

#[test]
fn breakdown_covers_every_node() {
    let (m, stats) = setup(MusicConfig::default());
    let cm = model(&m, &stats);
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let plan = Pt::sel(
        Expr::path("x", &["name"]).eq(Expr::text("Bach")),
        Pt::entity(e, "x"),
    );
    let pc = cm.cost(&plan).unwrap();
    assert_eq!(pc.breakdown.len(), 2);
    assert!(pc.breakdown[0].label.starts_with("scan"));
    assert!(pc.breakdown[1].label.starts_with("Sel"));
    // Totals are weighted consistently.
    let params = CostParams::default();
    assert!(pc.total(&params) > 0.0);
}

#[test]
fn index_selection_beats_scan_for_selective_predicates() {
    let (mut m, _) = setup(MusicConfig {
        chains: 30,
        chain_len: 10,
        ..Default::default()
    });
    let idx = m.db.physical_mut().add_index(
        oorq_storage::IndexKindDesc::Selection {
            class: m.composer,
            attr: m.name_attr,
        },
        oorq_storage::IndexStats {
            nblevels: 2,
            nbleaves: 20,
        },
    );
    let stats = DbStats::collect(&m.db);
    let cm = model(&m, &stats);
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let pred = Expr::path("x", &["name"]).eq(Expr::text("Bach"));
    let scan = Pt::sel(pred.clone(), Pt::entity(e, "x"));
    let indexed = Pt::Sel {
        pred,
        method: oorq_pt::AccessMethod::Index(idx),
        input: Box::new(Pt::entity(e, "x")),
    };
    let c_scan = cm.cost(&scan).unwrap();
    let c_idx = cm.cost(&indexed).unwrap();
    let p = CostParams::default();
    assert!(
        c_idx.total(&p) < c_scan.total(&p),
        "index probe must beat a 300-composer scan: {} vs {}",
        c_idx.total(&p),
        c_scan.total(&p)
    );
}
