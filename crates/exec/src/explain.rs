//! EXPLAIN ANALYZE: the physical plan tree with predicted and observed
//! figures inline per operator.
//!
//! Each line joins three layers by the pre-order PT node id
//! (`OpMeta::pt_node`): the cost model's per-node prediction
//! ([`oorq_cost::NodeCost`]), the §11 sound interval bounds
//! ([`oorq_analysis::NodeBounds`]), and the executor's exclusive
//! observed counters ([`crate::OpReport`]). An observed counter that
//! escapes its sound interval is flagged with `!!` — on a debug build
//! the executor would already have asserted, so a flag in a release
//! run is the analyzer soundness contract failing in the field.
//!
//! `Exchange`/`Merge` wrappers share their input's PT node but do no
//! per-row work of their own (their exclusive counters are ~0), so
//! they get observed columns but no prediction or bounds check —
//! mirroring the executor's own `assert_bounds` filter.

use oorq_analysis::Analysis;
use oorq_cost::NodeCost;
use oorq_pt::{PhysOp, PhysPlan};

use crate::executor::ExecReport;
use crate::pipeline::OpReport;

/// Render the EXPLAIN ANALYZE tree: one line per physical operator with
/// `est`/`obs` rows and pages, estimated cpu vs observed evals, and
/// exclusive wall time. `breakdown` is the cost model's per-node lines
/// (joined by PT node id), `analysis` the optional sound bounds, and
/// `report` the run whose `ops` were produced by the same plan.
pub fn explain_analyze(
    plan: &PhysPlan,
    breakdown: &[NodeCost],
    analysis: Option<&Analysis>,
    report: &ExecReport,
) -> String {
    let mut out = String::from(
        "EXPLAIN ANALYZE (est = cost model, obs = executed; \
         pages = reads+hits, !! = observed escaped the sound interval)\n",
    );
    walk(&plan.root, 0, breakdown, analysis, &report.ops, &mut out);
    out
}

/// The prediction for one PT node: the breakdown line whose `node`
/// matches.
fn predicted(breakdown: &[NodeCost], pt_node: usize) -> Option<&NodeCost> {
    breakdown.iter().find(|nc| nc.node == Some(pt_node))
}

fn walk(
    op: &PhysOp,
    depth: usize,
    breakdown: &[NodeCost],
    analysis: Option<&Analysis>,
    ops: &[OpReport],
    out: &mut String,
) {
    use std::fmt::Write as _;
    let meta = op.meta();
    let _ = write!(out, "{}#{} {}", "  ".repeat(depth), meta.id, meta.label);
    // Exchange/Merge wrappers share their input's PT node; predictions
    // and bounds belong to the wrapped operator (see module docs).
    let wrapper = matches!(op, PhysOp::Exchange { .. } | PhysOp::Merge { .. });
    let obs = ops.get(meta.id).filter(|o| o.opens > 0);
    if let Some(o) = obs {
        let pages = o.page_reads + o.page_hits;
        let _ = write!(
            out,
            "  rows obs={} pages obs={} idx obs={} writes obs={}",
            o.rows_out, pages, o.index_reads, o.page_writes
        );
        if o.temp_reads + o.spill_evictions > 0 {
            let _ = write!(
                out,
                " temp-reads={} spills={}",
                o.temp_reads, o.spill_evictions
            );
        }
    }
    if !wrapper {
        if let Some(nc) = predicted(breakdown, meta.pt_node) {
            let _ = write!(
                out,
                "  est rows={:.1} io={:.1} cpu={:.1}",
                nc.rows, nc.cost.io, nc.cost.cpu
            );
        }
    }
    if let Some(o) = obs {
        let _ = write!(out, "  wall={:.1}µs", o.wall_ns as f64 / 1_000.0);
        if !wrapper {
            if let Some(nb) = analysis.and_then(|a| a.node(meta.pt_node)) {
                let mut flags = String::new();
                let pages = o.page_reads + o.page_hits;
                for (what, observed, iv) in [
                    ("rows", o.rows_out, nb.rows_total),
                    ("pages", pages, nb.data()),
                    ("idx", o.index_reads, nb.index()),
                    ("writes", o.page_writes, nb.writes()),
                ] {
                    if !iv.contains_count(observed) {
                        let _ = write!(flags, " !! {what}={observed}∉{iv}");
                    }
                }
                out.push_str(&flags);
            }
        }
    }
    out.push('\n');
    for c in op.children() {
        walk(c, depth + 1, breakdown, analysis, ops, out);
    }
}
