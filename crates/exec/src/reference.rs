//! A naive reference evaluator for query graphs.
//!
//! This evaluator implements the *semantics* of query graphs directly —
//! tree-label embeddings, predicate filtering, output projection, and a
//! naive (non-semi-naive) fixpoint over the whole graph — with no
//! optimizer and no I/O accounting. It is deliberately independent of
//! the PT executor so the two can check each other: every plan the
//! optimizer emits must produce exactly this evaluator's answer.

use std::collections::HashSet;

use oorq_query::{GraphTerm, NameRef, QueryGraph, SpjNode, TreeLabel};
use oorq_schema::ResolvedType;
use oorq_storage::{Database, Oid, Value};

use crate::error::ExecError;
use crate::eval::{Batch, Counters, EvalCtx};
use crate::methods::MethodRegistry;

/// Iteration bound for the naive fixpoint (defence against
/// non-converging graphs).
const MAX_ROUNDS: usize = 10_000;

/// Accumulated rows per produced name: `(name, columns, rows)`.
type NameState = (NameRef, Vec<String>, Vec<Vec<Value>>);

/// Evaluate a query graph naively and return the (deduplicated) answer.
pub fn eval_query_graph(
    db: &Database,
    methods: &MethodRegistry,
    graph: &QueryGraph,
) -> Result<Batch, ExecError> {
    let counters = Counters::default();
    let ctx = EvalCtx {
        db,
        methods,
        counters: &counters,
        account_io: false,
    };
    // State: rows produced so far for every derived/view name.
    let mut state: Vec<NameState> = Vec::new();
    let name_cols = |graph: &QueryGraph, name: &NameRef| -> Result<Vec<String>, ExecError> {
        let ty = graph.type_of(db.catalog(), name)?;
        match ty {
            ResolvedType::Tuple(fields) => Ok(fields.into_iter().map(|(n, _)| n).collect()),
            _ => Ok(vec!["value".to_string()]),
        }
    };
    // Initialize state slots for every produced name.
    for (name, _) in &graph.nodes {
        if !state.iter().any(|(n, _, _)| n == name) {
            state.push((name.clone(), name_cols(graph, name)?, Vec::new()));
        }
    }
    // Naive iteration to fixpoint.
    for _ in 0..MAX_ROUNDS {
        let mut changed = false;
        for (name, term) in &graph.nodes {
            let produced = eval_term(&ctx, graph, term, &state)?;
            let slot = state
                .iter_mut()
                .find(|(n, _, _)| n == name)
                .expect("slot initialized above");
            let existing: HashSet<&Vec<Value>> = slot.2.iter().collect();
            let mut fresh: Vec<Vec<Value>> = Vec::new();
            for row in produced {
                if !existing.contains(&row) && !fresh.contains(&row) {
                    fresh.push(row);
                }
            }
            if !fresh.is_empty() {
                changed = true;
                slot.2.extend(fresh);
            }
        }
        if !changed {
            break;
        }
    }
    let (_, cols, rows) = state
        .into_iter()
        .find(|(n, _, _)| *n == graph.answer)
        .ok_or_else(|| ExecError::Query(oorq_query::QueryError::NoAnswer("answer".into())))?;
    let mut batch = Batch { cols, rows };
    batch.dedup();
    Ok(batch)
}

fn eval_term(
    ctx: &EvalCtx<'_>,
    graph: &QueryGraph,
    term: &GraphTerm,
    state: &[NameState],
) -> Result<Vec<Vec<Value>>, ExecError> {
    match term {
        GraphTerm::Spj(spj) => eval_spj(ctx, graph, spj, state),
        GraphTerm::Union(l, r) => {
            let mut rows = eval_term(ctx, graph, l, state)?;
            rows.extend(eval_term(ctx, graph, r, state)?);
            Ok(rows)
        }
        // The reference evaluator's outer loop *is* the fixpoint.
        GraphTerm::Fix(_, p) => eval_term(ctx, graph, p, state),
    }
}

/// The instances of a name node: objects for classes, rows for stored
/// relations, current derived rows for views/derived names.
fn instances(
    ctx: &EvalCtx<'_>,
    name: &NameRef,
    state: &[NameState],
) -> Result<Vec<Vec<Value>>, ExecError> {
    // Derived state first (views shadow their empty stored extension).
    if let Some((_, _, rows)) = state.iter().find(|(n, _, _)| n == name) {
        return Ok(rows.clone());
    }
    match name {
        NameRef::Class(c) => {
            let n = ctx.db.object_count(*c);
            Ok((0..n).map(|i| vec![Value::Oid(Oid::new(*c, i))]).collect())
        }
        NameRef::Relation(r) => {
            let entities = ctx.db.physical().entities_of_relation(*r);
            let mut rows = Vec::new();
            for e in entities {
                for row in ctx.db.scan_raw(*e) {
                    rows.push(row.values);
                }
            }
            Ok(rows)
        }
        NameRef::Derived(d) => Err(ExecError::Query(oorq_query::QueryError::UndefinedDerived(
            d.clone(),
        ))),
    }
}

fn eval_spj(
    ctx: &EvalCtx<'_>,
    graph: &QueryGraph,
    spj: &SpjNode,
    state: &[NameState],
) -> Result<Vec<Vec<Value>>, ExecError> {
    // Per-arc instance lists, with per-instance bindings.
    let mut arc_bindings: Vec<Vec<Vec<(String, Value)>>> = Vec::new();
    for arc in &spj.inputs {
        let ty = graph.type_of(ctx.db.catalog(), &arc.name)?;
        let rows = instances(ctx, &arc.name, state)?;
        let mut per_instance = Vec::new();
        for row in rows {
            // Root bindings for the instance.
            let mut roots: Vec<(String, Value)> = Vec::new();
            let root_value = match (&ty, row.as_slice()) {
                (ResolvedType::Tuple(fields), vals) => {
                    if let Some(v) = &arc.var {
                        for ((fname, _), val) in fields.iter().zip(vals.iter()) {
                            roots.push((format!("{v}.{fname}"), val.clone()));
                        }
                    }
                    Value::Tuple(vals.to_vec())
                }
                (_, [single]) => single.clone(),
                (_, vals) => Value::Tuple(vals.to_vec()),
            };
            if let Some(v) = &arc.var {
                roots.push((v.clone(), root_value.clone()));
            }
            // Tree-label embeddings.
            let embeddings = embed(ctx, &root_value, &ty, &arc.label)?;
            let mut options = Vec::new();
            for emb in embeddings {
                let mut b = roots.clone();
                b.extend(emb);
                options.push(b);
            }
            if options.is_empty() {
                // No embedding: the instance cannot satisfy the label
                // (e.g. an empty collection on the requested path).
                continue;
            }
            per_instance.extend(options);
        }
        arc_bindings.push(per_instance);
    }

    // Cartesian product over arcs.
    let mut out = Vec::new();
    let mut idx = vec![0usize; arc_bindings.len()];
    if arc_bindings.iter().any(|a| a.is_empty()) {
        return Ok(out);
    }
    loop {
        // Assemble the environment.
        let mut cols: Vec<String> = Vec::new();
        let mut row: Vec<Value> = Vec::new();
        for (a, &i) in arc_bindings.iter().zip(idx.iter()) {
            for (c, v) in &a[i] {
                cols.push(c.clone());
                row.push(v.clone());
            }
        }
        if ctx.truthy(&spj.pred, &cols, &row)? {
            let mut out_row = Vec::with_capacity(spj.out_proj.len());
            for (_, e) in &spj.out_proj {
                out_row.push(ctx.eval(e, &cols, &row)?);
            }
            out.push(out_row);
        }
        // Advance the product counter.
        let mut k = 0;
        loop {
            if k == idx.len() {
                let mut seen = HashSet::new();
                out.retain(|r| seen.insert(r.clone()));
                return Ok(out);
            }
            idx[k] += 1;
            if idx[k] < arc_bindings[k].len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

/// All embeddings of a tree label into a value of the given type. Each
/// embedding is a list of `(variable, value)` bindings. Children combine
/// by cartesian product; element steps choose one member each.
fn embed(
    ctx: &EvalCtx<'_>,
    value: &Value,
    ty: &ResolvedType,
    label: &TreeLabel,
) -> Result<Vec<Vec<(String, Value)>>, ExecError> {
    let mut result: Vec<Vec<(String, Value)>> = vec![Vec::new()];
    for child in &label.children {
        // The alternative (value, type) pairs this child can bind to.
        let branches: Vec<(Value, ResolvedType)> = match &child.attr {
            Some(attr) => match (value, ty) {
                (Value::Oid(o), ResolvedType::Object(_)) => {
                    let v = ctx.attr_of(*o, attr)?;
                    let (_, a) = ctx
                        .db
                        .catalog()
                        .attr(o.class, attr)
                        .ok_or_else(|| ExecError::UnknownAttribute(attr.clone()))?;
                    vec![(v, a.ty.clone())]
                }
                (Value::Tuple(vals), ResolvedType::Tuple(fields)) => {
                    let i = fields
                        .iter()
                        .position(|(n, _)| n == attr)
                        .ok_or_else(|| ExecError::UnknownAttribute(attr.clone()))?;
                    vec![(vals[i].clone(), fields[i].1.clone())]
                }
                (Value::Null, _) => vec![],
                _ => {
                    return Err(ExecError::BadValue(format!(
                        "attribute step `{attr}` on {value}"
                    )))
                }
            },
            None => match ty {
                ResolvedType::Set(e) | ResolvedType::List(e) => value
                    .members()
                    .iter()
                    .map(|m| (m.clone(), (**e).clone()))
                    .collect(),
                _ => return Err(ExecError::BadValue("element step on scalar".into())),
            },
        };
        let mut combined = Vec::new();
        for prefix in &result {
            for (bval, bty) in &branches {
                for sub in embed(ctx, bval, bty, &child.tree)? {
                    let mut b = prefix.clone();
                    if let Some(v) = &child.var {
                        b.push((v.clone(), bval.clone()));
                    }
                    b.extend(sub);
                    combined.push(b);
                }
            }
        }
        result = combined;
        if result.is_empty() {
            return Ok(result);
        }
    }
    Ok(result)
}
