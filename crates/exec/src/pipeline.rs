//! The streaming pipeline: pull-based execution of lowered physical
//! plans with per-operator counters.
//!
//! Each [`PhysOp`] becomes an operator instance with `open`/`next`:
//! scans stream page-at-a-time from the store ([`Database::scan_iter`])
//! instead of materializing whole entities, and rows flow straight
//! through filters, projections, dereferences and joins. Only genuine
//! pipeline breakers materialize: the semi-naive fixpoint (accumulator
//! and delta temporaries) and the inner of a nested loop over a
//! non-rescannable subtree.
//!
//! Every `open`/`next` call is bracketed by snapshots of the store's
//! I/O statistics, the CPU counters and a wall clock, accumulating
//! *inclusive* per-operator figures; [`rollup`] subtracts each
//! operator's children to yield the exclusive [`OpReport`]s that bench
//! reports join against the cost model's per-node predictions.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Instant;

use oorq_index::IndexSet;
use oorq_pt::{PhysOp, PhysPlan};
use oorq_storage::{Database, EntityId, IoStats, Oid, ScanIter, Value};

use crate::error::ExecError;
use crate::eval::{lit_value, Counters, EvalCtx};
use crate::methods::MethodRegistry;

/// Observed per-operator counters of one execution (exclusive: each
/// operator's own work, children subtracted).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpReport {
    /// Operator id (dense, lowering order).
    pub id: usize,
    /// Pre-order index of the source PT node — the join key against the
    /// cost model's per-node predicted breakdown.
    pub pt_node: usize,
    /// Operator label (aligned with the cost breakdown's labels).
    pub label: String,
    /// Times the operator was opened (1, plus nested-loop rescans of an
    /// inner, plus one per fixpoint iteration for the recursive side).
    pub opens: u64,
    /// Rows pulled from children.
    pub rows_in: u64,
    /// Rows produced.
    pub rows_out: u64,
    /// Data pages fetched from disk.
    pub page_reads: u64,
    /// Data pages found in the buffer.
    pub page_hits: u64,
    /// Index page reads.
    pub index_reads: u64,
    /// Pages written (temporary spills).
    pub page_writes: u64,
    /// Physical re-reads of temporary pages (spilled breaker state
    /// fetched back from the page store); a subset of `page_reads`.
    pub temp_reads: u64,
    /// Temporary pages this operator's work forced out under the
    /// breaker memory budget.
    pub spill_evictions: u64,
    /// Predicate comparisons evaluated.
    pub evals: u64,
    /// Method (computed-attribute) invocations.
    pub method_calls: u64,
    /// Wall time spent in the operator itself (children subtracted).
    pub wall_ns: u64,
    /// Raw inclusive wall time (children's brackets still included) —
    /// kept alongside the exclusive figure so attribution can be audited.
    pub wall_inclusive_ns: u64,
}

/// The per-iteration delta-size curve of one fixpoint *opening*.
///
/// A plan can contain several `Fix` operators, and a fixpoint inside a
/// rescanned subtree can open more than once; each opening records its
/// own curve, keyed by the operator so curves never interleave or
/// concatenate indistinguishably. Openings appear in execution order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FixDeltaCurve {
    /// Physical operator id of the `FixPoint` (dense, lowering order).
    pub op_id: usize,
    /// Pre-order index of the source PT node — the join key against the
    /// cost model's per-node predicted breakdown (`NodeCost::node`).
    pub pt_node: usize,
    /// The temporary the fixpoint accumulates.
    pub temp: String,
    /// Delta sizes in iteration order: the seed delta first, then one
    /// entry per semi-naive iteration; the final entry is 0 when the
    /// fixpoint converged.
    pub deltas: Vec<u64>,
}

impl std::fmt::Display for FixDeltaCurve {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@node{}: {:?}", self.temp, self.pt_node, self.deltas)
    }
}

/// One parallel worker's contribution to one `Exchange`/`Merge`
/// opening: its partition's rows, wall time and I/O view counters.
/// Surfaced through `ExecReport` so speedup reports can compare the
/// per-worker lanes against the serial baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerLane {
    /// Operator id of the `Exchange`/`Merge` that forked this worker.
    pub op_id: usize,
    /// The operator's label (e.g. `Exchange(x2)`).
    pub label: String,
    /// Worker index within the fork (0-based; lanes appear in order).
    pub worker: usize,
    /// Rows the worker's partition produced.
    pub rows: u64,
    /// The worker's wall time from fork to join.
    pub wall_ns: u64,
    /// The worker's private buffer-view counters.
    pub io: IoStats,
}

/// Inclusive per-operator tallies (children's work still included).
#[derive(Debug, Clone, Copy, Default)]
struct OpStats {
    opens: u64,
    rows_out: u64,
    page_reads: u64,
    page_hits: u64,
    index_reads: u64,
    page_writes: u64,
    temp_reads: u64,
    spill_evictions: u64,
    evals: u64,
    method_calls: u64,
    wall_ns: u64,
    /// Earliest bracket start on the recorder's clock (`u64::MAX` until
    /// the operator first runs under an enabled recorder).
    first_ns: u64,
    /// Latest bracket end on the recorder's clock.
    last_ns: u64,
    /// Raw clock-skew magnitude: nanoseconds by which computed bracket
    /// starts preceded the recorder's epoch (0 when the two clocks
    /// agree, which the debug-assert convention demands).
    skew_ns: u64,
}

/// Shared runtime of one pipeline execution.
struct Rt<'a> {
    db: &'a Database,
    indexes: &'a IndexSet,
    methods: &'a MethodRegistry,
    counters: &'a Counters,
    /// Per-temporary: (accumulator entity, delta entity); pre-created by
    /// the executor (creation needs `&mut Database`).
    temps: &'a HashMap<String, (EntityId, EntityId)>,
    /// Per materializing `NlJoin` (keyed by operator id): the page-store
    /// temporary backing its materialized inner; pre-created by the
    /// executor alongside the fixpoint temporaries.
    nl_mats: &'a HashMap<usize, EntityId>,
    /// Temporaries currently bound to their delta (a fixpoint iteration
    /// is in flight).
    delta_active: RefCell<HashSet<String>>,
    stats: RefCell<Vec<OpStats>>,
    max_fix_iterations: u32,
    /// Trace recorder (disabled by default; one branch per call then).
    obs: &'a oorq_obs::Recorder,
    /// Per-fixpoint-opening delta curves, in execution order (each
    /// `FixPoint` open appends one curve keyed by its operator).
    fix_deltas: RefCell<Vec<FixDeltaCurve>>,
    /// Worker-pool size for `Exchange`/`Merge` operators (0 or 1 =
    /// drain them inline on this thread; the plan shape is unchanged).
    threads: u32,
    /// Set inside a parallel worker: restricts the driver leaf scan to
    /// the worker's page range. `None` on the coordinating thread.
    partition: Option<Partition>,
    /// Per-worker lanes of every `Exchange`/`Merge` opening, in fork
    /// order (coordinator-only; workers never nest parallel operators).
    worker_lanes: RefCell<Vec<WorkerLane>>,
}

/// A parallel worker's share of an exchange: worker `worker` of
/// `workers` runs the subtree with the driver leaf (`driver_op`)
/// restricted to pages `[worker·P/workers, (worker+1)·P/workers)`.
#[derive(Debug, Clone, Copy)]
struct Partition {
    driver_op: usize,
    worker: usize,
    workers: usize,
}

impl<'a> Rt<'a> {
    fn ctx(&self) -> EvalCtx<'a> {
        EvalCtx {
            db: self.db,
            methods: self.methods,
            counters: self.counters,
            account_io: true,
        }
    }
}

/// What one pipeline execution produced: rows (bag semantics — the
/// caller deduplicates the answer), per-operator reports, and the
/// per-fixpoint delta curves.
pub(crate) type ExecOutput = (
    Vec<Vec<Value>>,
    Vec<OpReport>,
    Vec<FixDeltaCurve>,
    Vec<WorkerLane>,
);

/// Execute a lowered plan.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute(
    plan: &PhysPlan,
    db: &Database,
    indexes: &IndexSet,
    methods: &MethodRegistry,
    counters: &Counters,
    temps: &HashMap<String, (EntityId, EntityId)>,
    nl_mats: &HashMap<usize, EntityId>,
    max_fix_iterations: u32,
    obs: &oorq_obs::Recorder,
    threads: u32,
) -> Result<ExecOutput, ExecError> {
    let rt = Rt {
        db,
        indexes,
        methods,
        counters,
        temps,
        nl_mats,
        delta_active: RefCell::new(HashSet::new()),
        stats: RefCell::new(vec![
            OpStats {
                first_ns: u64::MAX,
                ..OpStats::default()
            };
            plan.ops
        ]),
        max_fix_iterations,
        obs,
        fix_deltas: RefCell::new(Vec::new()),
        threads,
        partition: None,
        worker_lanes: RefCell::new(Vec::new()),
    };
    let mut root = build(&plan.root);
    root.open(&rt)?;
    let mut rows = Vec::new();
    while let Some(r) = root.next(&rt)? {
        rows.push(r);
    }
    drop(root);
    let stats = rt.stats.into_inner();
    let reports = rollup(plan, &stats);
    record_op_spans(obs, &reports, &stats);
    Ok((
        rows,
        reports,
        rt.fix_deltas.into_inner(),
        rt.worker_lanes.into_inner(),
    ))
}

/// Synthesize one span per operator that actually ran: the interval is
/// the envelope of its `open`/`next` brackets, the fields carry its
/// exclusive counters, and the `track` field gives each operator its own
/// named track in the Chrome export (operator envelopes overlap, so they
/// cannot share the stack-discipline track).
fn record_op_spans(obs: &oorq_obs::Recorder, reports: &[OpReport], stats: &[OpStats]) {
    if !obs.enabled() {
        return;
    }
    for (r, s) in reports.iter().zip(stats) {
        if s.first_ns == u64::MAX {
            continue; // never ran under this recorder
        }
        let fields: oorq_obs::Fields = vec![
            ("track".into(), format!("op#{} {}", r.id, r.label).into()),
            ("id".into(), r.id.into()),
            ("pt_node".into(), r.pt_node.into()),
            ("opens".into(), r.opens.into()),
            ("rows_in".into(), r.rows_in.into()),
            ("rows_out".into(), r.rows_out.into()),
            ("page_reads".into(), r.page_reads.into()),
            ("page_hits".into(), r.page_hits.into()),
            ("index_reads".into(), r.index_reads.into()),
            ("page_writes".into(), r.page_writes.into()),
            ("temp_reads".into(), r.temp_reads.into()),
            ("spill_evictions".into(), r.spill_evictions.into()),
            ("evals".into(), r.evals.into()),
            ("method_calls".into(), r.method_calls.into()),
            ("wall_ns".into(), r.wall_ns.into()),
            ("wall_inclusive_ns".into(), r.wall_inclusive_ns.into()),
        ];
        let mut fields = fields;
        if s.skew_ns > 0 {
            // Raw clock-skew magnitude (release builds clamp the span
            // start at 0 instead of underflowing; see `Rt::charge`).
            fields.push(("clock_skew_ns".into(), s.skew_ns.into()));
        }
        obs.add_span("exec", &r.label, None, s.first_ns, s.last_ns, fields);
    }
}

/// Per-operator mutable state.
enum St<'a> {
    /// Filter: no state beyond the child.
    Stateless,
    /// Entity/temp scan: the streaming page iterator.
    Scan(Option<ScanIter<'a>>),
    /// Index selection: probe results, consumed by position.
    Probe { oids: Vec<Oid>, pos: usize },
    /// Project: rows already emitted (streaming set semantics).
    Dedup(HashSet<Vec<Value>>),
    /// Fan-out operators (IJ, PIJ, index join): produced rows awaiting
    /// emission.
    Queue(VecDeque<Vec<Value>>),
    /// Nested loop: current outer row, plus (when the inner is not
    /// rescannable — pipeline breaker) the scan over the page-store
    /// temporary the inner was materialized into at `open`, re-created
    /// per outer row so every pass over the inner is budget-visible.
    Nl {
        cur: Option<Vec<Value>>,
        miter: Option<ScanIter<'a>>,
    },
    /// Union: which operand is being drained.
    Union { on_right: bool },
    /// Fixpoint: computed at `open` into the accumulator temporary (the
    /// canonical pipeline breaker), streamed back out of the page store
    /// so the readback is buffer-accounted (hits while resident, reads
    /// once the memory budget spilled it).
    Fix { iter: Option<ScanIter<'a>> },
    /// Exchange/merge: partition (or leg) outputs concatenated in
    /// deterministic order at `open`, streamed out by position.
    Mat { out: Vec<Vec<Value>>, pos: usize },
}

struct OpExec<'p, 'a> {
    op: &'p PhysOp,
    kids: Vec<OpExec<'p, 'a>>,
    st: St<'a>,
}

fn build<'p, 'a>(op: &'p PhysOp) -> OpExec<'p, 'a> {
    let kids = op.children().into_iter().map(build).collect();
    let st = match op {
        PhysOp::EntityScan { .. } | PhysOp::TempScan { .. } => St::Scan(None),
        PhysOp::IndexSelect { .. } => St::Probe {
            oids: Vec::new(),
            pos: 0,
        },
        PhysOp::Filter { .. } => St::Stateless,
        PhysOp::Project { .. } => St::Dedup(HashSet::new()),
        PhysOp::IjDeref { .. } | PhysOp::PijLookup { .. } | PhysOp::IndexJoin { .. } => {
            St::Queue(VecDeque::new())
        }
        PhysOp::NlJoin { .. } => St::Nl {
            cur: None,
            miter: None,
        },
        PhysOp::UnionAll { .. } => St::Union { on_right: false },
        PhysOp::FixPoint { .. } => St::Fix { iter: None },
        PhysOp::Exchange { .. } | PhysOp::Merge { .. } => St::Mat {
            out: Vec::new(),
            pos: 0,
        },
    };
    OpExec { op, kids, st }
}

/// What one parallel worker hands back at the join: its partition's
/// rows (in partition order), its per-operator inclusive tallies, its
/// CPU counter totals, and its private buffer view's I/O counters.
struct WorkerOut {
    rows: Vec<Vec<Value>>,
    stats: Vec<OpStats>,
    evals: u64,
    method_calls: u64,
    io: IoStats,
    t_start_ns: u64,
    t_end_ns: u64,
    wall_ns: u64,
}

/// Operator id of a pipeline subtree's driver leaf: the leftmost scan,
/// reached by following first children down the spine. Only called on
/// [`oorq_pt::exchange_eligible`] subtrees, whose spine always ends in
/// an `EntityScan`/`TempScan`.
fn driver_leaf(op: &PhysOp) -> usize {
    match op {
        PhysOp::EntityScan { meta, .. } | PhysOp::TempScan { meta, .. } => meta.id,
        _ => driver_leaf(op.children()[0]),
    }
}

/// A partition worker's page range `[lo, hi)` of a `pages`-page driver
/// leaf: `worker·pages/workers` scaled in u64, then *checked* back into
/// the store's u32 page domain. The unchecked `as u32` this replaces
/// silently wrapped for page counts near `u32::MAX`, making a worker
/// quietly rescan (or skip) pages instead of failing loudly.
fn partition_range(pages: u64, worker: u64, workers: u64) -> Result<(u32, u32), ExecError> {
    debug_assert!(workers > 0 && worker < workers);
    let bound = |w: u64| -> Result<u32, ExecError> {
        let scaled = w
            .checked_mul(pages)
            .ok_or_else(|| partition_overflow(pages, workers))?
            / workers.max(1);
        u32::try_from(scaled).map_err(|_| partition_overflow(pages, workers))
    };
    Ok((bound(worker)?, bound(worker + 1)?))
}

fn partition_overflow(pages: u64, workers: u64) -> ExecError {
    ExecError::PartitionOverflow { pages, workers }
}

/// A parallel worker's slice of the breaker memory budget: an even
/// split, floored at one page so a tiny budget still spills rather than
/// silently lifting the cap (0 stays 0 = unbounded).
fn worker_budget(budget: usize, workers: usize) -> usize {
    if budget == 0 {
        0
    } else {
        (budget / workers.max(1)).max(1)
    }
}

/// Apply a merge leg's column permutation (identical semantics to
/// `UnionAll`'s right-side permutation).
fn apply_perm(perm: Option<&Vec<usize>>, r: Vec<Value>) -> Vec<Value> {
    match perm {
        None => r,
        Some(p) => p.iter().map(|&i| r[i].clone()).collect(),
    }
}

/// Run one parallel worker: build a private operator tree over the
/// subtree, install a private buffer-accounting view, drain the tree,
/// and hand everything back for the coordinator to merge. The worker's
/// `Rt` shares the database snapshot, indexes, methods, temps and
/// recorder with the coordinator but owns its counters, per-operator
/// stats and delta bindings — nothing mutable is shared across threads
/// except the recorder's internal mutex.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    op: &PhysOp,
    db: &Database,
    indexes: &IndexSet,
    methods: &MethodRegistry,
    temps: &HashMap<String, (EntityId, EntityId)>,
    nl_mats: &HashMap<usize, EntityId>,
    max_fix_iterations: u32,
    obs: &oorq_obs::Recorder,
    delta_active: HashSet<String>,
    ops_len: usize,
    partition: Option<Partition>,
    frames: usize,
    temp_budget: usize,
) -> Result<WorkerOut, ExecError> {
    let counters = Counters::default();
    let rt = Rt {
        db,
        indexes,
        methods,
        counters: &counters,
        temps,
        nl_mats,
        delta_active: RefCell::new(delta_active),
        stats: RefCell::new(vec![
            OpStats {
                first_ns: u64::MAX,
                ..OpStats::default()
            };
            ops_len
        ]),
        max_fix_iterations,
        obs,
        fix_deltas: RefCell::new(Vec::new()),
        threads: 0,
        partition,
        worker_lanes: RefCell::new(Vec::new()),
    };
    db.install_worker_buffer(frames, temp_budget);
    let t_start_ns = obs.now_ns();
    let wall0 = Instant::now();
    let mut root = build(op);
    let res: Result<Vec<Vec<Value>>, ExecError> = (|| {
        root.open(&rt)?;
        let mut rows = Vec::new();
        while let Some(r) = root.next(&rt)? {
            rows.push(r);
        }
        Ok(rows)
    })();
    drop(root);
    // Uninstall the view even on error, or the thread-local would leak
    // into whatever runs on this thread next.
    let io = db.take_worker_buffer();
    let rows = res?;
    Ok(WorkerOut {
        rows,
        stats: rt.stats.into_inner(),
        evals: counters.evals.get(),
        method_calls: counters.method_calls.get(),
        io,
        t_start_ns,
        t_end_ns: obs.now_ns(),
        wall_ns: wall0.elapsed().as_nanos() as u64,
    })
}

/// Snapshot of the shared counters, for inclusive-delta charging.
struct Snap {
    t0: Instant,
    io: IoStats,
    evals: u64,
    method_calls: u64,
}

impl<'a> Rt<'a> {
    fn snap(&self) -> Snap {
        Snap {
            t0: Instant::now(),
            io: self.db.io_stats(),
            evals: self.counters.evals.get(),
            method_calls: self.counters.method_calls.get(),
        }
    }

    fn charge(&self, id: usize, snap: Snap) {
        let io = self.db.io_stats();
        let mut stats = self.stats.borrow_mut();
        let s = &mut stats[id];
        s.page_reads += io.page_reads - snap.io.page_reads;
        s.page_hits += io.page_hits - snap.io.page_hits;
        s.index_reads += io.index_reads - snap.io.index_reads;
        s.page_writes += io.page_writes - snap.io.page_writes;
        s.temp_reads += io.temp_reads - snap.io.temp_reads;
        s.spill_evictions += io.spill_evictions - snap.io.spill_evictions;
        s.evals += self.counters.evals.get() - snap.evals;
        s.method_calls += self.counters.method_calls.get() - snap.method_calls;
        let elapsed = snap.t0.elapsed().as_nanos() as u64;
        s.wall_ns += elapsed;
        if self.obs.enabled() {
            // Bracket envelope on the recorder's clock, for the
            // synthesized per-operator spans. Both `elapsed` and `end`
            // come from the same monotonic clock family, so a bracket
            // start before the recorder's epoch is clock skew — assert
            // it (the PR 4 wall-accounting convention) instead of
            // silently clamping to 0, and keep the raw magnitude so a
            // release-build clamp stays auditable.
            let end = self.obs.now_ns();
            match end.checked_sub(elapsed) {
                Some(start) => s.first_ns = s.first_ns.min(start),
                None => {
                    debug_assert!(
                        false,
                        "op #{id}: bracket start precedes the recorder epoch \
                         (elapsed {elapsed}ns > recorder clock {end}ns)"
                    );
                    s.skew_ns += elapsed - end;
                    s.first_ns = 0;
                }
            }
            s.last_ns = s.last_ns.max(end);
        }
    }

    /// The scan iterator for a leaf: the full entity normally, or this
    /// worker's page range when the leaf is the partitioned driver of
    /// the enclosing exchange.
    fn leaf_scan(&self, entity: EntityId, op_id: usize) -> Result<ScanIter<'a>, ExecError> {
        match self.partition {
            Some(p) if p.driver_op == op_id => {
                let pages = self.db.num_pages(entity) as u64;
                let (lo, hi) = partition_range(pages, p.worker as u64, p.workers as u64)?;
                Ok(self.db.scan_iter_range(entity, lo, hi))
            }
            _ => Ok(self.db.scan_iter(entity)),
        }
    }

    /// The page-store temporary backing a materializing `NlJoin`'s inner.
    fn nl_mat(&self, op_id: usize) -> Result<EntityId, ExecError> {
        self.nl_mats.get(&op_id).copied().ok_or_else(|| {
            ExecError::BadPlan(format!(
                "materialized inner temporary for op #{op_id} not prepared"
            ))
        })
    }

    /// Join a fork's workers in index order: fold their I/O and CPU
    /// counters into the shared accounting (inside the parallel
    /// operator's open bracket, so its inclusive tallies stay exact),
    /// merge their per-operator stats, record one lane and one
    /// per-worker span each, and concatenate their rows. Deterministic
    /// by construction — merge order is worker order regardless of
    /// thread scheduling.
    fn join_workers(
        &self,
        meta: &oorq_pt::OpMeta,
        results: Vec<Result<WorkerOut, ExecError>>,
        out: &mut Vec<Vec<Value>>,
        perms: Option<&[Option<Vec<usize>>]>,
    ) -> Result<(), ExecError> {
        let mut first_err = None;
        for (w, res) in results.into_iter().enumerate() {
            let wo = match res {
                Ok(wo) => wo,
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                    continue;
                }
            };
            self.db.absorb_io(wo.io);
            self.counters
                .evals
                .set(self.counters.evals.get() + wo.evals);
            self.counters
                .method_calls
                .set(self.counters.method_calls.get() + wo.method_calls);
            {
                let mut stats = self.stats.borrow_mut();
                for (id, ws) in wo.stats.iter().enumerate() {
                    let s = &mut stats[id];
                    s.opens += ws.opens;
                    s.rows_out += ws.rows_out;
                    s.page_reads += ws.page_reads;
                    s.page_hits += ws.page_hits;
                    s.index_reads += ws.index_reads;
                    s.page_writes += ws.page_writes;
                    s.temp_reads += ws.temp_reads;
                    s.spill_evictions += ws.spill_evictions;
                    s.evals += ws.evals;
                    s.method_calls += ws.method_calls;
                    s.wall_ns += ws.wall_ns;
                    s.first_ns = s.first_ns.min(ws.first_ns);
                    s.last_ns = s.last_ns.max(ws.last_ns);
                    s.skew_ns += ws.skew_ns;
                }
            }
            if self.obs.enabled() && wo.t_end_ns > wo.t_start_ns {
                let fields: oorq_obs::Fields = vec![
                    (
                        "track".into(),
                        format!("op#{} {} worker#{w}", meta.id, meta.label).into(),
                    ),
                    ("op_id".into(), meta.id.into()),
                    ("worker".into(), w.into()),
                    ("rows".into(), (wo.rows.len() as u64).into()),
                    ("wall_ns".into(), wo.wall_ns.into()),
                    ("page_reads".into(), wo.io.page_reads.into()),
                    ("page_hits".into(), wo.io.page_hits.into()),
                    ("index_reads".into(), wo.io.index_reads.into()),
                ];
                self.obs.add_span(
                    "exec",
                    &format!("{} worker {w}", meta.label),
                    None,
                    wo.t_start_ns,
                    wo.t_end_ns,
                    fields,
                );
            }
            self.worker_lanes.borrow_mut().push(WorkerLane {
                op_id: meta.id,
                label: meta.label.clone(),
                worker: w,
                rows: wo.rows.len() as u64,
                wall_ns: wo.wall_ns,
                io: wo.io,
            });
            let perm = perms.and_then(|ps| ps.get(w)).and_then(|p| p.as_ref());
            out.extend(wo.rows.into_iter().map(|r| apply_perm(perm, r)));
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl<'a> OpExec<'_, 'a> {
    fn open(&mut self, rt: &Rt<'a>) -> Result<(), ExecError> {
        let id = self.op.meta().id;
        let snap = rt.snap();
        let res = self.open_inner(rt);
        rt.charge(id, snap);
        rt.stats.borrow_mut()[id].opens += 1;
        res
    }

    fn next(&mut self, rt: &Rt<'a>) -> Result<Option<Vec<Value>>, ExecError> {
        let id = self.op.meta().id;
        let snap = rt.snap();
        let res = self.next_inner(rt);
        rt.charge(id, snap);
        if matches!(res, Ok(Some(_))) {
            rt.stats.borrow_mut()[id].rows_out += 1;
        }
        res
    }

    fn open_inner(&mut self, rt: &Rt<'a>) -> Result<(), ExecError> {
        let OpExec { op, kids, st } = self;
        match (&**op, st) {
            (PhysOp::EntityScan { entity, meta, .. }, St::Scan(iter)) => {
                *iter = Some(rt.leaf_scan(*entity, meta.id)?);
                Ok(())
            }
            (PhysOp::TempScan { name, .. }, St::Scan(iter)) => {
                let (acc, delta) = *rt
                    .temps
                    .get(name)
                    .ok_or_else(|| ExecError::BadFixpoint(format!("temp `{name}` not built")))?;
                let entity = if rt.delta_active.borrow().contains(name) {
                    delta
                } else {
                    acc
                };
                *iter = Some(rt.leaf_scan(entity, op.meta().id)?);
                Ok(())
            }
            (PhysOp::IndexSelect { index, key, .. }, St::Probe { oids, pos }) => {
                let six = rt
                    .indexes
                    .selection(*index)
                    .ok_or(ExecError::MissingIndex)?;
                *oids = six.probe(rt.db, &lit_value(key));
                *pos = 0;
                Ok(())
            }
            (PhysOp::Filter { require_index, .. }, St::Stateless) => {
                // The named index must exist even though the plan degraded
                // to a filter (access-method resolution parity).
                if let Some(idx) = require_index {
                    rt.indexes.selection(*idx).ok_or(ExecError::MissingIndex)?;
                }
                kids[0].open(rt)
            }
            (PhysOp::Project { .. }, St::Dedup(seen)) => {
                seen.clear();
                kids[0].open(rt)
            }
            (PhysOp::IjDeref { .. }, St::Queue(q)) => {
                q.clear();
                kids[0].open(rt)
            }
            (PhysOp::PijLookup { index, .. }, St::Queue(q)) => {
                rt.indexes.path(*index).ok_or(ExecError::MissingIndex)?;
                q.clear();
                kids[0].open(rt)
            }
            (
                PhysOp::NlJoin {
                    rescan_inner,
                    require_index,
                    ..
                },
                St::Nl { cur, miter },
            ) => {
                if let Some(idx) = require_index {
                    rt.indexes.selection(*idx).ok_or(ExecError::MissingIndex)?;
                }
                *cur = None;
                *miter = None;
                kids[0].open(rt)?;
                if !rescan_inner {
                    // Pipeline breaker: materialize the complex inner once
                    // into a page-store temporary, so its footprint counts
                    // against the breaker memory budget and its writes and
                    // re-reads are charged to this operator's `IoStats`.
                    let mat_e = rt.nl_mat(op.meta().id)?;
                    rt.db.truncate_temp(mat_e)?;
                    kids[1].open(rt)?;
                    while let Some(r) = kids[1].next(rt)? {
                        rt.db.append_temp(mat_e, r)?;
                    }
                }
                Ok(())
            }
            (PhysOp::IndexJoin { index, .. }, St::Queue(q)) => {
                rt.indexes
                    .selection(*index)
                    .ok_or(ExecError::MissingIndex)?;
                q.clear();
                kids[0].open(rt)
            }
            (PhysOp::UnionAll { .. }, St::Union { on_right }) => {
                *on_right = false;
                kids[0].open(rt)
            }
            (PhysOp::FixPoint { temp, perm, .. }, St::Fix { iter }) => {
                *iter = None;
                let (acc_e, delta_e) = *rt
                    .temps
                    .get(temp.as_str())
                    .ok_or_else(|| ExecError::BadFixpoint(format!("temp `{temp}` not built")))?;
                rt.db.truncate_temp(acc_e)?;
                rt.db.truncate_temp(delta_e)?;

                // Each opening records its own delta curve, keyed by the
                // operator (two `Fix` nodes — or one re-opened fixpoint —
                // must never interleave or concatenate their curves).
                let meta = op.meta();
                let (op_id, pt_node) = (meta.id, meta.pt_node);
                let curve = {
                    let mut curves = rt.fix_deltas.borrow_mut();
                    curves.push(FixDeltaCurve {
                        op_id,
                        pt_node,
                        temp: temp.clone(),
                        deltas: Vec::new(),
                    });
                    curves.len() - 1
                };

                // Base case: seed the accumulator and the delta.
                let mut seen: HashSet<Vec<Value>> = HashSet::new();
                kids[0].open(rt)?;
                while let Some(row) = kids[0].next(rt)? {
                    if seen.insert(row.clone()) {
                        rt.db.append_temp(acc_e, row.clone())?;
                        rt.db.append_temp(delta_e, row)?;
                    }
                }
                let seed_rows = rt.db.entity_len(delta_e) as u64;
                rt.fix_deltas.borrow_mut()[curve].deltas.push(seed_rows);
                rt.obs.event(
                    "exec",
                    "fix-iteration",
                    vec![
                        ("temp".into(), temp.as_str().into()),
                        ("op_id".into(), op_id.into()),
                        ("pt_node".into(), pt_node.into()),
                        ("iteration".into(), 0u64.into()),
                        ("delta_rows".into(), seed_rows.into()),
                    ],
                );

                // Iterate the recursive side over the delta until no new
                // rows appear.
                let mut iterations = 0u32;
                while rt.db.entity_len(delta_e) > 0 {
                    iterations += 1;
                    if iterations > rt.max_fix_iterations {
                        return Err(ExecError::FixpointDiverged(temp.clone()));
                    }
                    rt.delta_active.borrow_mut().insert(temp.clone());
                    let rec = kids[1].open(rt).and_then(|()| {
                        let mut rows = Vec::new();
                        while let Some(r) = kids[1].next(rt)? {
                            rows.push(r);
                        }
                        Ok(rows)
                    });
                    rt.delta_active.borrow_mut().remove(temp.as_str());
                    let rec = rec?;
                    rt.db.truncate_temp(delta_e)?;
                    for r in rec {
                        let row: Vec<Value> = match perm {
                            None => r,
                            Some(p) => p.iter().map(|&i| r[i].clone()).collect(),
                        };
                        if seen.insert(row.clone()) {
                            rt.db.append_temp(acc_e, row.clone())?;
                            rt.db.append_temp(delta_e, row)?;
                        }
                    }
                    let delta_rows = rt.db.entity_len(delta_e) as u64;
                    rt.fix_deltas.borrow_mut()[curve].deltas.push(delta_rows);
                    rt.obs.counter_add("exec.fix_iterations", 1.0);
                    rt.obs.event(
                        "exec",
                        "fix-iteration",
                        vec![
                            ("temp".into(), temp.as_str().into()),
                            ("op_id".into(), op_id.into()),
                            ("pt_node".into(), pt_node.into()),
                            ("iteration".into(), iterations.into()),
                            ("delta_rows".into(), delta_rows.into()),
                        ],
                    );
                }
                // Converged: stream the answer back out of the
                // accumulator temporary. The readback is charged to this
                // operator — page hits while the accumulator stayed
                // resident, physical re-reads once the memory budget
                // spilled it.
                *iter = Some(rt.db.scan_iter(acc_e));
                Ok(())
            }
            (PhysOp::Exchange { workers, input, .. }, St::Mat { out, pos }) => {
                *pos = 0;
                out.clear();
                let eff = (*workers).min(rt.threads.max(1) as usize);
                // Serial fallback (threads <= 1, or a hand-built plan the
                // eligibility rule rejects): drain the child inline. Same
                // rows, same order, no fork.
                if eff < 2 || !oorq_pt::exchange_eligible(input) {
                    kids[0].open(rt)?;
                    while let Some(r) = kids[0].next(rt)? {
                        out.push(r);
                    }
                    return Ok(());
                }
                let input: &PhysOp = input;
                let driver = driver_leaf(input);
                let frames = (rt.db.buffer_frames() / eff).max(1);
                let wbudget = worker_budget(rt.db.temp_budget_pages(), eff);
                let ops_len = rt.stats.borrow().len();
                let delta = rt.delta_active.borrow().clone();
                let (db, indexes, methods, temps, nl_mats, obs, max_fix) = (
                    rt.db,
                    rt.indexes,
                    rt.methods,
                    rt.temps,
                    rt.nl_mats,
                    rt.obs,
                    rt.max_fix_iterations,
                );
                let results: Vec<Result<WorkerOut, ExecError>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..eff)
                        .map(|w| {
                            let delta = delta.clone();
                            let part = Partition {
                                driver_op: driver,
                                worker: w,
                                workers: eff,
                            };
                            scope.spawn(move || {
                                run_worker(
                                    input,
                                    db,
                                    indexes,
                                    methods,
                                    temps,
                                    nl_mats,
                                    max_fix,
                                    obs,
                                    delta,
                                    ops_len,
                                    Some(part),
                                    frames,
                                    wbudget,
                                )
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .enumerate()
                        .map(|(w, h)| {
                            h.join().unwrap_or_else(|_| {
                                Err(ExecError::WorkerPanicked(format!(
                                    "exchange #{} worker {w}",
                                    op.meta().id
                                )))
                            })
                        })
                        .collect()
                });
                rt.join_workers(op.meta(), results, out, None)
            }
            (
                PhysOp::Merge {
                    perms, children, ..
                },
                St::Mat { out, pos },
            ) => {
                *pos = 0;
                out.clear();
                let eff = children.len().min(rt.threads.max(1) as usize);
                if eff < 2 {
                    // Serial fallback: drain the legs in order, exactly a
                    // `UnionAll` chain.
                    for (k, kid) in kids.iter_mut().enumerate() {
                        kid.open(rt)?;
                        while let Some(r) = kid.next(rt)? {
                            out.push(apply_perm(perms[k].as_ref(), r));
                        }
                    }
                    return Ok(());
                }
                let frames = (rt.db.buffer_frames() / children.len()).max(1);
                let wbudget = worker_budget(rt.db.temp_budget_pages(), children.len());
                let ops_len = rt.stats.borrow().len();
                let delta = rt.delta_active.borrow().clone();
                let (db, indexes, methods, temps, nl_mats, obs, max_fix) = (
                    rt.db,
                    rt.indexes,
                    rt.methods,
                    rt.temps,
                    rt.nl_mats,
                    rt.obs,
                    rt.max_fix_iterations,
                );
                let results: Vec<Result<WorkerOut, ExecError>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = children
                        .iter()
                        .map(|leg| {
                            let delta = delta.clone();
                            let leg: &PhysOp = leg;
                            scope.spawn(move || {
                                run_worker(
                                    leg, db, indexes, methods, temps, nl_mats, max_fix, obs, delta,
                                    ops_len, None, frames, wbudget,
                                )
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .enumerate()
                        .map(|(w, h)| {
                            h.join().unwrap_or_else(|_| {
                                Err(ExecError::WorkerPanicked(format!(
                                    "merge #{} leg {w}",
                                    op.meta().id
                                )))
                            })
                        })
                        .collect()
                });
                rt.join_workers(op.meta(), results, out, Some(perms))
            }
            _ => unreachable!("operator/state shape mismatch"),
        }
    }

    fn next_inner(&mut self, rt: &Rt<'a>) -> Result<Option<Vec<Value>>, ExecError> {
        let OpExec { op, kids, st } = self;
        match (&**op, st) {
            (PhysOp::EntityScan { class, .. }, St::Scan(iter)) => {
                let Some(it) = iter.as_mut() else {
                    return Ok(None);
                };
                Ok(it.next().map(|row| match class {
                    Some(c) => vec![Value::Oid(Oid::new(*c, row.key))],
                    None => row.values,
                }))
            }
            (PhysOp::TempScan { .. }, St::Scan(iter)) => {
                Ok(iter.as_mut().and_then(|it| it.next()).map(|r| r.values))
            }
            (PhysOp::IndexSelect { class, pred, .. }, St::Probe { oids, pos }) => {
                while *pos < oids.len() {
                    let o = oids[*pos];
                    *pos += 1;
                    if o.class != *class {
                        continue;
                    }
                    // Fetch the object's page (the probe yields only oids),
                    // then apply the full predicate as a residual filter.
                    let _ = rt.db.read_object(o)?;
                    let row = vec![Value::Oid(o)];
                    if rt.ctx().truthy(pred, op.cols(), &row)? {
                        return Ok(Some(row));
                    }
                }
                Ok(None)
            }
            (PhysOp::Filter { pred, .. }, St::Stateless) => loop {
                let Some(row) = kids[0].next(rt)? else {
                    return Ok(None);
                };
                if rt.ctx().truthy(pred, op.cols(), &row)? {
                    return Ok(Some(row));
                }
            },
            (PhysOp::Project { exprs, .. }, St::Dedup(seen)) => loop {
                let Some(row) = kids[0].next(rt)? else {
                    return Ok(None);
                };
                let in_cols = kids[0].op.cols();
                let ctx = rt.ctx();
                let mut new_row = Vec::with_capacity(exprs.len());
                for (_, e) in exprs {
                    new_row.push(ctx.eval(e, in_cols, &row)?);
                }
                if seen.insert(new_row.clone()) {
                    return Ok(Some(new_row));
                }
            },
            (PhysOp::IjDeref { on, .. }, St::Queue(q)) => loop {
                if let Some(r) = q.pop_front() {
                    return Ok(Some(r));
                }
                let Some(row) = kids[0].next(rt)? else {
                    return Ok(None);
                };
                let in_cols = kids[0].op.cols();
                for m in rt.ctx().eval_members(on, in_cols, &row)? {
                    if let Value::Oid(o) = m {
                        // Touch the sub-object's page: the implicit join
                        // is what pays the dereference.
                        let _ = rt.db.read_object(o)?;
                        let mut r = row.clone();
                        r.push(Value::Oid(o));
                        q.push_back(r);
                    }
                }
            },
            (
                PhysOp::PijLookup {
                    index, on, outs, ..
                },
                St::Queue(q),
            ) => loop {
                if let Some(r) = q.pop_front() {
                    return Ok(Some(r));
                }
                let Some(row) = kids[0].next(rt)? else {
                    return Ok(None);
                };
                let pix = rt.indexes.path(*index).ok_or(ExecError::MissingIndex)?;
                let in_cols = kids[0].op.cols();
                for m in rt.ctx().eval_members(on, in_cols, &row)? {
                    let Value::Oid(head) = m else { continue };
                    for tail in pix.probe(rt.db, head) {
                        if tail.len() < outs.len() {
                            continue;
                        }
                        let mut r = row.clone();
                        for o in tail.iter().take(outs.len()) {
                            r.push(Value::Oid(*o));
                        }
                        q.push_back(r);
                    }
                }
            },
            (
                PhysOp::NlJoin {
                    pred, rescan_inner, ..
                },
                St::Nl { cur, miter },
            ) => loop {
                if cur.is_none() {
                    let Some(l) = kids[0].next(rt)? else {
                        return Ok(None);
                    };
                    *cur = Some(l);
                    if *rescan_inner {
                        // Honest nested loop: rescan the leaf-ish inner
                        // through the buffer manager for every outer row.
                        kids[1].open(rt)?;
                    } else {
                        // Re-scan the materialized inner from its
                        // page-store temporary: hits while it stays
                        // resident, physical re-reads once the memory
                        // budget spilled it.
                        *miter = Some(rt.db.scan_iter(rt.nl_mat(op.meta().id)?));
                    }
                }
                let rrow = if *rescan_inner {
                    kids[1].next(rt)?
                } else {
                    miter
                        .as_mut()
                        .expect("inner materialized at open")
                        .next()
                        .map(|r| r.values)
                };
                let Some(rrow) = rrow else {
                    *cur = None;
                    continue;
                };
                let mut combined = cur.as_ref().expect("outer row in hand").clone();
                combined.extend(rrow);
                if rt.ctx().truthy(pred, op.cols(), &combined)? {
                    return Ok(Some(combined));
                }
            },
            (
                PhysOp::IndexJoin {
                    index,
                    class,
                    outer,
                    pred,
                    ..
                },
                St::Queue(q),
            ) => loop {
                if let Some(r) = q.pop_front() {
                    return Ok(Some(r));
                }
                let Some(lrow) = kids[0].next(rt)? else {
                    return Ok(None);
                };
                let six = rt
                    .indexes
                    .selection(*index)
                    .ok_or(ExecError::MissingIndex)?;
                let in_cols = kids[0].op.cols();
                let keys = rt.ctx().eval_members(outer, in_cols, &lrow)?;
                for key in keys {
                    for o in six.probe(rt.db, &key) {
                        if o.class != *class {
                            continue;
                        }
                        let _ = rt.db.read_object(o)?;
                        let mut combined = lrow.clone();
                        combined.push(Value::Oid(o));
                        if rt.ctx().truthy(pred, op.cols(), &combined)? {
                            q.push_back(combined);
                        }
                    }
                }
            },
            (PhysOp::UnionAll { perm, .. }, St::Union { on_right }) => loop {
                if !*on_right {
                    match kids[0].next(rt)? {
                        Some(r) => return Ok(Some(r)),
                        None => {
                            *on_right = true;
                            kids[1].open(rt)?;
                        }
                    }
                } else {
                    let Some(r) = kids[1].next(rt)? else {
                        return Ok(None);
                    };
                    return Ok(Some(match perm {
                        None => r,
                        Some(p) => p.iter().map(|&i| r[i].clone()).collect(),
                    }));
                }
            },
            (PhysOp::FixPoint { .. }, St::Fix { iter }) => {
                Ok(iter.as_mut().and_then(|it| it.next()).map(|r| r.values))
            }
            (PhysOp::Exchange { .. } | PhysOp::Merge { .. }, St::Mat { out, pos }) => {
                let r = out.get(*pos).cloned();
                if r.is_some() {
                    *pos += 1;
                }
                Ok(r)
            }
            _ => unreachable!("operator/state shape mismatch"),
        }
    }
}

/// Exclusive per-operator reports: subtract each operator's direct
/// children from its inclusive tallies; `rows_in` is the children's
/// combined output.
///
/// The subtraction is *checked*: children's counters are summed first
/// and asserted (in debug builds, with the offending operator named) to
/// never exceed the parent's inclusive tally. An unchecked per-child
/// `saturating_sub` chain would clamp one child's overshoot to zero and
/// then subtract the remaining children from the wrong base, silently
/// mis-attributing their work to the parent — exactly the kind of
/// systematic drift the calibration gate exists to catch. Release
/// builds still clamp at zero rather than underflow.
fn rollup(plan: &PhysPlan, stats: &[OpStats]) -> Vec<OpReport> {
    /// Checked exclusive counter: `inclusive - children`, clamped in
    /// release, asserted in debug.
    fn exclusive(inclusive: u64, children: u64, what: &str, id: usize, label: &str) -> u64 {
        debug_assert!(
            children <= inclusive,
            "op #{id} ({label}): children's {what} ({children}) exceeds the \
             operator's inclusive tally ({inclusive})"
        );
        inclusive.saturating_sub(children)
    }

    let mut out: Vec<OpReport> = (0..plan.ops).map(|_| OpReport::default()).collect();
    plan.root.visit(&mut |op| {
        let id = op.meta().id;
        let label = &op.meta().label;
        // Exchange/Merge cut the wall-attribution chain: their
        // children's tallies are per-worker sums, so "children <=
        // parent" holds exactly for the counters (worker totals are
        // folded back in before the bracket closes) but *not* for wall
        // time, where the workers' summed wall exceeds the
        // coordinator's fork-to-join interval by up to the degree of
        // parallelism. Clamp at the boundary instead of asserting; the
        // per-worker walls survive in the `WorkerLane`s.
        let boundary = matches!(op, PhysOp::Exchange { .. } | PhysOp::Merge { .. });
        let s = stats[id];
        let mut kids = OpStats::default();
        let mut rows_in = 0;
        for c in op.children() {
            let cs = stats[c.meta().id];
            rows_in += cs.rows_out;
            kids.page_reads += cs.page_reads;
            kids.page_hits += cs.page_hits;
            kids.index_reads += cs.index_reads;
            kids.page_writes += cs.page_writes;
            kids.temp_reads += cs.temp_reads;
            kids.spill_evictions += cs.spill_evictions;
            kids.evals += cs.evals;
            kids.method_calls += cs.method_calls;
            kids.wall_ns += cs.wall_ns;
        }
        out[id] = OpReport {
            id,
            pt_node: op.meta().pt_node,
            label: label.clone(),
            opens: s.opens,
            rows_in,
            rows_out: s.rows_out,
            page_reads: exclusive(s.page_reads, kids.page_reads, "page_reads", id, label),
            page_hits: exclusive(s.page_hits, kids.page_hits, "page_hits", id, label),
            index_reads: exclusive(s.index_reads, kids.index_reads, "index_reads", id, label),
            page_writes: exclusive(s.page_writes, kids.page_writes, "page_writes", id, label),
            temp_reads: exclusive(s.temp_reads, kids.temp_reads, "temp_reads", id, label),
            spill_evictions: exclusive(
                s.spill_evictions,
                kids.spill_evictions,
                "spill_evictions",
                id,
                label,
            ),
            evals: exclusive(s.evals, kids.evals, "evals", id, label),
            method_calls: exclusive(s.method_calls, kids.method_calls, "method_calls", id, label),
            // Wall time obeys the same invariant as the counters: every
            // child `open`/`next` bracket is a disjoint subinterval of
            // some parent bracket on the same monotonic clock, so the
            // children's sum can never exceed the parent's inclusive
            // tally — assert it rather than silently flooring residue.
            // (Except across a parallel boundary; see above.)
            wall_ns: if boundary {
                s.wall_ns.saturating_sub(kids.wall_ns)
            } else {
                exclusive(s.wall_ns, kids.wall_ns, "wall_ns", id, label)
            },
            wall_inclusive_ns: s.wall_ns,
        };
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_range_covers_all_pages_without_overlap() {
        for pages in [0u64, 1, 7, 1000] {
            for workers in [1u64, 2, 3, 7] {
                let mut next = 0u32;
                for w in 0..workers {
                    let (lo, hi) = partition_range(pages, w, workers).unwrap();
                    assert_eq!(lo, next, "pages={pages} workers={workers} w={w}");
                    assert!(hi >= lo);
                    next = hi;
                }
                assert_eq!(next as u64, pages);
            }
        }
    }

    #[test]
    fn partition_range_at_u32_page_boundary() {
        // The page domain's ceiling: u32::MAX pages split across workers
        // must still cover [0, u32::MAX) exactly — the old unchecked
        // `as u32` arithmetic is only honest if these bounds round-trip.
        let pages = u32::MAX as u64;
        let (lo0, hi0) = partition_range(pages, 0, 3).unwrap();
        let (lo1, hi1) = partition_range(pages, 1, 3).unwrap();
        let (lo2, hi2) = partition_range(pages, 2, 3).unwrap();
        assert_eq!(lo0, 0);
        assert_eq!(hi0, lo1);
        assert_eq!(hi1, lo2);
        assert_eq!(hi2, u32::MAX);
    }

    #[test]
    fn partition_range_rejects_scaled_overflow() {
        // worker · pages overflowing u64 must surface as an error, not
        // wrap into a bogus in-domain page range.
        let err = partition_range(u64::MAX / 2, 3, 4).unwrap_err();
        assert!(matches!(err, ExecError::PartitionOverflow { .. }), "{err}");
    }

    #[test]
    fn worker_budget_splits_and_floors() {
        assert_eq!(worker_budget(0, 4), 0, "0 stays unbounded");
        assert_eq!(worker_budget(8, 2), 4);
        assert_eq!(worker_budget(3, 4), 1, "floored at one page");
    }
}
