//! Execution errors.

use std::fmt;

use oorq_query::QueryError;
use oorq_storage::StorageError;

/// Errors raised by the executor.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// An expression referenced a column the input does not produce.
    UnknownColumn(String),
    /// An attribute name does not exist on the dereferenced class.
    UnknownAttribute(String),
    /// A computed attribute has no registered method implementation.
    MissingMethod(String),
    /// A value had the wrong shape for the operation.
    BadValue(String),
    /// An index id does not resolve to a built index structure.
    MissingIndex,
    /// The two sides of a union produce different column sets.
    UnionMismatch,
    /// A `Fix` body is not a union of a base and a recursive part.
    BadFixpoint(String),
    /// The fixpoint did not converge within the iteration bound.
    FixpointDiverged(String),
    /// The debug-mode plan verifier rejected the plan before execution.
    PlanLint(String),
    /// Lowering to a physical plan failed (the plan is ill-formed in a
    /// way the runtime vocabulary has no specific error for).
    BadPlan(String),
    /// An exchange worker thread panicked (the panic payload is lost
    /// across the join; the plan and partition identify the work).
    WorkerPanicked(String),
    /// Page-range partition arithmetic left the store's u32 page domain
    /// (would otherwise silently wrap and mis-assign pages to workers).
    PartitionOverflow {
        /// Pages of the partitioned driver leaf.
        pages: u64,
        /// Degree of parallelism of the enclosing exchange.
        workers: u64,
    },
    /// Storage-level failure.
    Storage(StorageError),
    /// Query-graph failure (reference evaluator).
    Query(QueryError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            ExecError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            ExecError::MissingMethod(m) => write!(f, "no method implementation for `{m}`"),
            ExecError::BadValue(m) => write!(f, "bad value: {m}"),
            ExecError::MissingIndex => write!(f, "index structure not built"),
            ExecError::UnionMismatch => write!(f, "union operands produce different columns"),
            ExecError::BadFixpoint(m) => write!(f, "bad fixpoint: {m}"),
            ExecError::FixpointDiverged(t) => {
                write!(f, "fixpoint over `{t}` exceeded the iteration bound")
            }
            ExecError::PlanLint(d) => write!(f, "plan failed verification:\n{d}"),
            ExecError::BadPlan(m) => write!(f, "cannot lower plan: {m}"),
            ExecError::WorkerPanicked(w) => write!(f, "parallel worker panicked: {w}"),
            ExecError::PartitionOverflow { pages, workers } => write!(
                f,
                "page-range partition overflow: {pages} pages across {workers} workers \
                 leaves the u32 page domain"
            ),
            ExecError::Storage(e) => write!(f, "storage: {e}"),
            ExecError::Query(e) => write!(f, "query: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}

impl From<QueryError> for ExecError {
    fn from(e: QueryError) -> Self {
        ExecError::Query(e)
    }
}
