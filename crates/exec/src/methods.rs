//! Method implementations for computed attributes.
//!
//! The paper treats methods as *computed attributes* (§2.1). The schema
//! declares them with an evaluation-cost hint; the executor dispatches
//! invocations to the implementations registered here.

use std::collections::HashMap;
use std::sync::Arc;

use oorq_schema::{AttrId, Catalog, ClassId};
use oorq_storage::{Database, Oid, Value};

/// A method body: computes the attribute value of one object.
pub type MethodFn = Arc<dyn Fn(&Database, Oid) -> Value + Send + Sync>;

/// Registry of method implementations, keyed by `(class, attribute)`.
/// Lookups walk up the `isa` hierarchy, so a method registered on a
/// superclass applies to its subclasses.
#[derive(Clone, Default)]
pub struct MethodRegistry {
    map: HashMap<(ClassId, AttrId), MethodFn>,
}

impl std::fmt::Debug for MethodRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MethodRegistry({} methods)", self.map.len())
    }
}

impl MethodRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a method implementation.
    pub fn register(
        &mut self,
        class: ClassId,
        attr: AttrId,
        f: impl Fn(&Database, Oid) -> Value + Send + Sync + 'static,
    ) {
        self.map.insert((class, attr), Arc::new(f));
    }

    /// Invoke the method for `oid.attr`, if registered (directly or on a
    /// superclass that declared the same attribute id — attribute ids are
    /// stable under inheritance because layouts are parent-first).
    pub fn call(&self, db: &Database, oid: Oid, attr: AttrId) -> Option<Value> {
        let mut cls = Some(oid.class);
        while let Some(c) = cls {
            if let Some(f) = self.map.get(&(c, attr)) {
                return Some(f(db, oid));
            }
            cls = db.catalog().class(c).isa;
        }
        None
    }

    /// Register the music schema's `age` method (`age = 1800 -
    /// birth_year`, a fixed "present year" keeping the data
    /// deterministic).
    pub fn with_music_methods(catalog: &Catalog) -> Self {
        let mut reg = Self::new();
        if let Some(person) = catalog.class_by_name("Person") {
            if let Some((age, _)) = catalog.attr(person, "age") {
                let (birth, _) = catalog.attr(person, "birth_year").expect("music schema");
                reg.register(person, age, move |db, oid| {
                    match db.read_attr_raw(oid, birth) {
                        Ok(Value::Int(y)) => Value::Int(1800 - y),
                        _ => Value::Null,
                    }
                });
            }
        }
        reg
    }

    /// Register the parts schema's `unit_test_cost` method
    /// (`weight * 2`, an arbitrary deterministic function).
    pub fn with_parts_methods(catalog: &Catalog) -> Self {
        let mut reg = Self::new();
        if let Some(part) = catalog.class_by_name("Part") {
            if let Some((utc, _)) = catalog.attr(part, "unit_test_cost") {
                let (weight, _) = catalog.attr(part, "weight").expect("parts schema");
                reg.register(part, utc, move |db, oid| {
                    match db.read_attr_raw(oid, weight) {
                        Ok(Value::Int(w)) => Value::Int(2 * w),
                        _ => Value::Null,
                    }
                });
            }
        }
        reg
    }
}
