//! Row batches and expression evaluation.

use std::cell::Cell;
use std::collections::HashSet;

use oorq_query::{CmpOp, Expr, Literal};
use oorq_schema::AttributeKind;
use oorq_storage::{Database, Oid, Value};

use crate::error::ExecError;
use crate::methods::MethodRegistry;

/// A materialized stream of binding rows with named columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Column names.
    pub cols: Vec<String>,
    /// Rows (each aligned with `cols`).
    pub rows: Vec<Vec<Value>>,
}

impl Batch {
    /// Empty batch with the given columns.
    pub fn new(cols: Vec<String>) -> Self {
        Batch {
            cols,
            rows: Vec::new(),
        }
    }

    /// Index of a column.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|c| c == name)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Remove duplicate rows, preserving first occurrence order.
    pub fn dedup(&mut self) {
        let mut seen = HashSet::new();
        self.rows.retain(|r| seen.insert(r.clone()));
    }

    /// Reorder the columns of `other` to match `self`'s column order.
    pub fn aligned(&self, other: Batch) -> Result<Batch, ExecError> {
        if self.cols == other.cols {
            return Ok(other);
        }
        let perm: Option<Vec<usize>> = self.cols.iter().map(|c| other.col_index(c)).collect();
        let Some(perm) = perm else {
            return Err(ExecError::UnionMismatch);
        };
        if perm.len() != other.cols.len() {
            return Err(ExecError::UnionMismatch);
        }
        let rows = other
            .rows
            .into_iter()
            .map(|r| perm.iter().map(|&i| r[i].clone()).collect())
            .collect();
        Ok(Batch {
            cols: self.cols.clone(),
            rows,
        })
    }
}

/// CPU-side counters of the executor (interior mutability so evaluation
/// can thread shared references).
#[derive(Debug, Default)]
pub struct Counters {
    /// Predicate evaluations (comparisons actually performed).
    pub evals: Cell<u64>,
    /// Method (computed-attribute) invocations.
    pub method_calls: Cell<u64>,
}

impl Counters {
    fn bump_evals(&self) {
        self.evals.set(self.evals.get() + 1);
    }
    fn bump_methods(&self) {
        self.method_calls.set(self.method_calls.get() + 1);
    }
}

/// Evaluation context: the store, the method implementations, counters,
/// and whether attribute reads account page I/O (the reference evaluator
/// turns accounting off).
pub struct EvalCtx<'a> {
    /// The store.
    pub db: &'a Database,
    /// Method implementations.
    pub methods: &'a MethodRegistry,
    /// CPU counters.
    pub counters: &'a Counters,
    /// Account page I/O on attribute reads.
    pub account_io: bool,
}

impl EvalCtx<'_> {
    /// Read an attribute of an object, dispatching computed attributes to
    /// the method registry.
    pub fn attr_of(&self, oid: Oid, attr_name: &str) -> Result<Value, ExecError> {
        let (aid, attr) = self
            .db
            .catalog()
            .attr(oid.class, attr_name)
            .ok_or_else(|| ExecError::UnknownAttribute(attr_name.to_string()))?;
        match attr.kind {
            AttributeKind::Stored => {
                let v = if self.account_io {
                    self.db.read_attr(oid, aid)?
                } else {
                    self.db.read_attr_raw(oid, aid)?
                };
                Ok(v)
            }
            AttributeKind::Computed { .. } => {
                self.counters.bump_methods();
                self.methods.call(self.db, oid, aid).ok_or_else(|| {
                    ExecError::MissingMethod(format!(
                        "{}.{}",
                        self.db.catalog().class(oid.class).name,
                        attr_name
                    ))
                })
            }
        }
    }

    /// Evaluate an expression to its *member set* (existential
    /// semantics): a scalar yields one member, a collection yields each
    /// member, `Null` yields none. Paths fan out over collections.
    pub fn eval_members(
        &self,
        expr: &Expr,
        cols: &[String],
        row: &[Value],
    ) -> Result<Vec<Value>, ExecError> {
        let v = self.eval(expr, cols, row)?;
        Ok(v.members().to_vec())
    }

    /// Evaluate an expression to a single value. Collections evaluate to
    /// themselves; comparisons use existential member semantics.
    pub fn eval(&self, expr: &Expr, cols: &[String], row: &[Value]) -> Result<Value, ExecError> {
        match expr {
            Expr::True => Ok(Value::Bool(true)),
            Expr::Lit(l) => Ok(lit_value(l)),
            Expr::Var(v) => {
                let i = cols
                    .iter()
                    .position(|c| c == v)
                    .ok_or_else(|| ExecError::UnknownColumn(v.clone()))?;
                Ok(row[i].clone())
            }
            Expr::Path { base, steps } => {
                // Resolve the base column; a qualified `var.field` column
                // takes precedence (tuple roots are flattened into
                // qualified columns, and the bare column — if present —
                // holds an opaque tuple that paths cannot traverse).
                let qualified = (!steps.is_empty())
                    .then(|| format!("{base}.{}", steps[0]))
                    .and_then(|q| cols.iter().position(|c| *c == q));
                let (start, rest): (usize, &[String]) = match qualified {
                    Some(i) => (i, &steps[1..]),
                    None => {
                        let i = cols
                            .iter()
                            .position(|c| c == base)
                            .ok_or_else(|| ExecError::UnknownColumn(base.clone()))?;
                        (i, steps.as_slice())
                    }
                };
                let mut vals = vec![row[start].clone()];
                for step in rest {
                    let mut next = Vec::new();
                    for v in vals {
                        for m in v.members() {
                            if let Value::Oid(o) = m {
                                let av = self.attr_of(*o, step)?;
                                next.extend(av.members().iter().cloned());
                            }
                        }
                    }
                    vals = next;
                }
                Ok(match vals.len() {
                    0 => Value::Null,
                    1 => vals.pop().expect("len 1"),
                    _ => Value::Set(vals),
                })
            }
            Expr::Cmp { op, lhs, rhs } => {
                let lv = self.eval_members(lhs, cols, row)?;
                let rv = self.eval_members(rhs, cols, row)?;
                // Existential semantics with explicit null handling: a
                // `<> null` test succeeds iff some member exists.
                if matches!(rhs.as_ref(), Expr::Lit(Literal::Null)) {
                    self.counters.bump_evals();
                    return Ok(Value::Bool(match op {
                        CmpOp::Ne => !lv.is_empty(),
                        CmpOp::Eq => lv.is_empty(),
                        _ => false,
                    }));
                }
                for l in &lv {
                    for r in &rv {
                        self.counters.bump_evals();
                        let ok = match op {
                            CmpOp::Eq => l == r,
                            CmpOp::Ne => l != r,
                            CmpOp::Lt => l < r,
                            CmpOp::Le => l <= r,
                            CmpOp::Gt => l > r,
                            CmpOp::Ge => l >= r,
                        };
                        if ok {
                            return Ok(Value::Bool(true));
                        }
                    }
                }
                Ok(Value::Bool(false))
            }
            Expr::And(l, r) => {
                let lv = self.truthy(l, cols, row)?;
                if !lv {
                    return Ok(Value::Bool(false));
                }
                Ok(Value::Bool(self.truthy(r, cols, row)?))
            }
            Expr::Or(l, r) => {
                let lv = self.truthy(l, cols, row)?;
                if lv {
                    return Ok(Value::Bool(true));
                }
                Ok(Value::Bool(self.truthy(r, cols, row)?))
            }
            Expr::Not(e) => Ok(Value::Bool(!self.truthy(e, cols, row)?)),
            Expr::Add(l, r) => {
                let lv = self.eval(l, cols, row)?;
                let rv = self.eval(r, cols, row)?;
                match (&lv, &rv) {
                    (Value::Int(a), Value::Int(b)) => {
                        a.checked_add(*b).map(Value::Int).ok_or_else(|| {
                            ExecError::BadValue(format!("integer overflow in {a} + {b}"))
                        })
                    }
                    (Value::Float(a), Value::Float(b)) => Ok(Value::Float(a + b)),
                    (Value::Int(a), Value::Float(b)) => Ok(Value::Float(*a as f64 + b)),
                    (Value::Float(a), Value::Int(b)) => Ok(Value::Float(a + *b as f64)),
                    _ => Err(ExecError::BadValue(format!("cannot add {lv} + {rv}"))),
                }
            }
        }
    }

    /// Evaluate a predicate to a boolean. `Null` is three-valued-logic
    /// false (an unknown comparand filters the row out); any other
    /// non-`Bool` result is a type error, not a silent rejection.
    pub fn truthy(&self, expr: &Expr, cols: &[String], row: &[Value]) -> Result<bool, ExecError> {
        match self.eval(expr, cols, row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(ExecError::BadValue(format!(
                "predicate evaluated to non-boolean {other}"
            ))),
        }
    }
}

/// Convert a literal to a runtime value.
pub fn lit_value(l: &Literal) -> Value {
    match l {
        Literal::Int(i) => Value::Int(*i),
        Literal::Float(x) => Value::Float(*x),
        Literal::Text(s) => Value::Text(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Null => Value::Null,
    }
}
