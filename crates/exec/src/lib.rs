//! The execution engine: a PT interpreter with honest page-I/O and CPU
//! accounting (validating the cost model of `oorq-cost`), plus a naive
//! reference evaluator for query graphs used as a correctness oracle.
//!
//! Operators implemented: entity/temporary scans, selections (sequential
//! or through a selection index), projections, implicit joins
//! (dereferences), path-index joins, explicit joins (nested-loop with
//! honest inner rescans, or index join), unions, and **semi-naive
//! fixpoints** with materialized accumulator/delta temporaries.

mod error;
mod eval;
mod executor;
mod methods;
mod reference;

pub use error::ExecError;
pub use eval::{lit_value, Batch, Counters, EvalCtx};
pub use executor::{ExecConfig, ExecReport, Executor};
pub use methods::{MethodFn, MethodRegistry};
pub use reference::eval_query_graph;

#[cfg(test)]
mod tests;
