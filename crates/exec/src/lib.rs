//! The execution engine: a streaming physical-operator pipeline with
//! honest page-I/O and CPU accounting (validating the cost model of
//! `oorq-cost`), plus a naive reference evaluator for query graphs used
//! as a correctness oracle.
//!
//! Plans are lowered (`oorq_pt::lower`) to pull-based operators —
//! entity/temporary scans streaming page-at-a-time, index selections,
//! filters, projections, implicit joins (dereferences), path-index
//! lookups, nested-loop joins with honest inner rescans, index joins,
//! unions, and **semi-naive fixpoints** with materialized
//! accumulator/delta temporaries (the pipeline breakers). Every
//! operator tallies its own rows, page/index I/O, evaluations, method
//! calls and wall time ([`OpReport`]), joinable against the cost
//! model's per-node predictions.

mod error;
mod eval;
mod executor;
mod explain;
mod methods;
mod pipeline;
mod reference;

pub use error::ExecError;
pub use eval::{lit_value, Batch, Counters, EvalCtx};
pub use executor::{op_kind, ExecConfig, ExecReport, ExecState, Executor};
pub use explain::explain_analyze;
pub use methods::{MethodFn, MethodRegistry};
pub use pipeline::{FixDeltaCurve, OpReport};
pub use reference::eval_query_graph;

#[cfg(test)]
mod tests;
