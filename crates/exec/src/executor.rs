//! The PT executor: lowers a verified plan to a physical-operator
//! pipeline ([`oorq_pt::phys`]) and streams it with honest page-I/O
//! accounting through the store's buffer manager.

use std::collections::HashMap;

use oorq_index::IndexSet;
use oorq_pt::{PhysOp, PhysPlan, Pt, PtEnv, PtError};
use oorq_schema::ResolvedType;
use oorq_storage::{Database, EntityId, IoStats};

use crate::error::ExecError;
use crate::eval::{Batch, Counters};
use crate::methods::MethodRegistry;
use crate::pipeline::{self, FixDeltaCurve, OpReport, WorkerLane};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Safety bound on semi-naive iterations.
    pub max_fix_iterations: u32,
    /// Worker-pool size for `Exchange`/`Merge` operators. `0` (the
    /// default) and `1` drain parallel operators inline on the calling
    /// thread, preserving fully serial execution; the plan shape is
    /// identical either way.
    pub threads: u32,
    /// Breaker memory budget: maximum resident pages of pipeline-breaker
    /// temporaries (fixpoint accumulator/delta, materialized nested-loop
    /// inners). `0` (the default) is unbounded; a positive budget spills
    /// the least recently used breaker page and re-fetches it on the
    /// next pass, so answers are identical but page I/O reflects the
    /// budget. Parallel workers split the budget evenly.
    pub memory_budget_pages: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            max_fix_iterations: 10_000,
            threads: 0,
            memory_budget_pages: 0,
        }
    }
}

/// The durable part of an executor: the breaker temporaries it has
/// created in its database and their registered shapes.
///
/// An [`Executor`] borrows the database mutably, so a serving session
/// that holds a database across many queries cannot keep one executor
/// alive between them. Instead it carries this state: build each
/// per-query executor with [`Executor::with_state`], and take the state
/// back with [`Executor::into_state`] when the query completes. Temps
/// and nested-loop materialization pools are then reused by name/shape
/// instead of growing the physical schema by a fresh set of temporary
/// entities per query.
#[derive(Debug, Clone, Default)]
pub struct ExecState {
    /// Per-temporary: (accumulator entity, delta entity).
    pub temps: HashMap<String, (EntityId, EntityId)>,
    /// Field shapes of temporaries (for lowering and `PtEnv` typing).
    pub temp_fields: HashMap<String, Vec<(String, ResolvedType)>>,
    /// Pool of page-store temporaries backing materialized nested-loop
    /// inners, keyed by row shape.
    pub nl_mat_pool: HashMap<Vec<ResolvedType>, Vec<EntityId>>,
}

/// A report of the resources one execution consumed.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// Page I/O accumulated by the store.
    pub io: IoStats,
    /// Predicate evaluations performed.
    pub evals: u64,
    /// Method invocations performed.
    pub method_calls: u64,
    /// Per-operator observed counters of the last completed run.
    pub ops: Vec<OpReport>,
    /// Per-fixpoint delta curves of the last completed run: one entry
    /// per fixpoint *opening* (keyed by pipeline operator id and PT
    /// node), each holding its delta sizes in iteration order (the seed
    /// delta first, then one entry per semi-naive iteration; the final
    /// entry is 0 when the fixpoint converged).
    pub fix_deltas: Vec<FixDeltaCurve>,
    /// Per-worker lanes of the last completed run's `Exchange`/`Merge`
    /// openings, in fork order (empty under serial execution).
    pub workers: Vec<WorkerLane>,
}

impl ExecReport {
    /// Weighted total comparable with the cost model's units: pages at
    /// `pr`, and both comparisons and method invocations at `ev` (the
    /// cost model prices method calls as CPU work too).
    pub fn total(&self, pr: f64, ev: f64) -> f64 {
        (self.io.page_reads + self.io.index_reads + self.io.page_writes) as f64 * pr
            + (self.evals + self.method_calls) as f64 * ev
    }
}

/// The PT executor.
pub struct Executor<'a> {
    db: &'a mut Database,
    indexes: &'a IndexSet,
    methods: &'a MethodRegistry,
    counters: Counters,
    config: ExecConfig,
    /// Per-temporary: (accumulator entity, delta entity).
    temps: HashMap<String, (EntityId, EntityId)>,
    /// Field shapes of temporaries (for lowering and `PtEnv` typing).
    temp_fields: HashMap<String, Vec<(String, ResolvedType)>>,
    /// Pool of page-store temporaries backing materialized nested-loop
    /// inners, keyed by row shape (reused across runs; a run assigns
    /// distinct pool entries to distinct operators).
    nl_mat_pool: HashMap<Vec<ResolvedType>, Vec<EntityId>>,
    /// This run's assignment: materializing `NlJoin` operator id → its
    /// backing temporary.
    nl_mats: HashMap<usize, EntityId>,
    /// Per-operator reports of the last completed run.
    last_ops: Vec<OpReport>,
    /// Per-fixpoint delta curves of the last completed run.
    last_fix_deltas: Vec<FixDeltaCurve>,
    /// Worker lanes of the last completed run.
    last_workers: Vec<WorkerLane>,
    /// Degree of parallelism chosen per PT node by the optimizer,
    /// applied at lowering (empty = fully serial plans).
    parallel: oorq_pt::ParallelSpec,
    /// Trace recorder (disabled by default).
    obs: oorq_obs::Recorder,
    /// Aggregated metric series (disabled by default; every run then
    /// costs one branch at publish time).
    metrics: oorq_obs::MetricsRegistry,
    /// The lowered physical plan of the last completed run (joined with
    /// `last_ops` by EXPLAIN ANALYZE renderers).
    last_plan: Option<PhysPlan>,
}

impl<'a> Executor<'a> {
    /// New executor over a store, built indexes and method registry.
    pub fn new(db: &'a mut Database, indexes: &'a IndexSet, methods: &'a MethodRegistry) -> Self {
        Executor {
            db,
            indexes,
            methods,
            counters: Counters::default(),
            config: ExecConfig::default(),
            temps: HashMap::new(),
            temp_fields: HashMap::new(),
            nl_mat_pool: HashMap::new(),
            nl_mats: HashMap::new(),
            last_ops: Vec::new(),
            last_fix_deltas: Vec::new(),
            last_workers: Vec::new(),
            parallel: oorq_pt::ParallelSpec::new(),
            obs: oorq_obs::Recorder::disabled(),
            metrics: oorq_obs::MetricsRegistry::disabled(),
            last_plan: None,
        }
    }

    /// Override the configuration.
    pub fn with_config(mut self, config: ExecConfig) -> Self {
        self.config = config;
        self
    }

    /// Adopt the durable state of a previous executor over the *same*
    /// database (see [`ExecState`]): temporaries it created are reused
    /// rather than recreated.
    pub fn with_state(mut self, state: ExecState) -> Self {
        self.temps = state.temps;
        self.temp_fields = state.temp_fields;
        self.nl_mat_pool = state.nl_mat_pool;
        self
    }

    /// Surrender the durable state for the next executor over this
    /// database.
    pub fn into_state(self) -> ExecState {
        ExecState {
            temps: self.temps,
            temp_fields: self.temp_fields,
            nl_mat_pool: self.nl_mat_pool,
        }
    }

    /// Apply an optimizer-chosen parallel placement: subsequent runs
    /// lower their plans with these per-PT-node degrees of parallelism.
    /// With `ExecConfig::threads <= 1` the parallel operators still
    /// appear in the plan but drain inline, so results are unchanged.
    pub fn with_parallel(mut self, spec: oorq_pt::ParallelSpec) -> Self {
        self.parallel = spec;
        self
    }

    /// Attach a trace recorder: the executor records one span per run
    /// and one synthesized span per physical operator, the pipeline
    /// fires per-fixpoint-iteration events, and the store's buffer
    /// manager reports page hits/misses/evictions to the same trace.
    pub fn with_recorder(mut self, obs: oorq_obs::Recorder) -> Self {
        self.db.set_recorder(obs.clone());
        self.obs = obs;
        self
    }

    /// Attach a metrics registry: every completed run publishes its
    /// per-query wall/rows/evals, per-operator-kind and fixpoint series
    /// (`exec.*`), and the store's buffer manager bumps its `storage.*`
    /// counters inline. Worker lanes record into per-lane forks that are
    /// merged back at publish time, so parallel runs aggregate into the
    /// same series contention-free.
    pub fn with_metrics(mut self, metrics: oorq_obs::MetricsRegistry) -> Self {
        self.db.set_metrics(&metrics);
        self.metrics = metrics;
        self
    }

    /// The lowered physical plan of the last completed run.
    pub fn last_plan(&self) -> Option<&PhysPlan> {
        self.last_plan.as_ref()
    }

    /// Reset I/O and CPU counters (e.g. after a warm-up run).
    pub fn reset_counters(&mut self) {
        self.db.reset_io();
        self.counters = Counters::default();
        self.last_ops.clear();
        self.last_fix_deltas.clear();
        self.last_workers.clear();
    }

    /// The resources consumed so far (per-operator counters cover the
    /// last completed run).
    pub fn report(&self) -> ExecReport {
        ExecReport {
            io: self.db.io_stats(),
            evals: self.counters.evals.get(),
            method_calls: self.counters.method_calls.get(),
            ops: self.last_ops.clone(),
            fix_deltas: self.last_fix_deltas.clone(),
            workers: self.last_workers.clone(),
        }
    }

    /// Execute a plan and return its (deduplicated) answer.
    ///
    /// The plan is lowered to a physical-operator pipeline and streamed.
    /// In debug builds both the plan and its lowering are first checked
    /// against the static verifier: an ill-formed plan is rejected with
    /// [`ExecError::PlanLint`] before it can touch the store.
    pub fn run(&mut self, pt: &Pt) -> Result<Batch, ExecError> {
        let span = self.obs.begin("exec", "run");
        let wall0 = std::time::Instant::now();
        let evals0 = self.counters.evals.get();
        let res = self.run_inner(pt);
        if let Ok(batch) = &res {
            self.obs
                .span_fields(span, vec![("rows".into(), batch.rows.len().into())]);
            self.publish_metrics(
                wall0.elapsed().as_nanos() as u64,
                batch.rows.len() as u64,
                self.counters.evals.get() - evals0,
            );
        }
        self.obs.end(span);
        res
    }

    /// Publish one completed run into the metrics registry: the
    /// per-query series, one histogram pair per operator *kind*
    /// (aggregating e.g. every `EntityScan` in the plan), the fixpoint
    /// convergence series, and per-worker lanes through forked
    /// registries merged back in (the lanes were produced by concurrent
    /// workers; the fork/merge path is the same one a sharded serving
    /// layer would use).
    fn publish_metrics(&self, wall_ns: u64, rows: u64, evals: u64) {
        if !self.metrics.enabled() {
            return;
        }
        self.metrics.counter("exec.queries").inc();
        self.metrics.histogram("exec.query.wall_ns").record(wall_ns);
        self.metrics.histogram("exec.query.rows").record(rows);
        self.metrics.histogram("exec.query.evals").record(evals);
        for op in &self.last_ops {
            let kind = op_kind(&op.label);
            self.metrics
                .histogram(&format!("exec.op.{kind}.wall_ns"))
                .record(op.wall_ns);
            self.metrics
                .histogram(&format!("exec.op.{kind}.rows"))
                .record(op.rows_out);
        }
        for curve in &self.last_fix_deltas {
            self.metrics
                .histogram("exec.fix.iterations")
                .record((curve.deltas.len() as u64).saturating_sub(1));
            self.metrics
                .histogram("exec.fix.delta_mass")
                .record(curve.deltas.iter().sum());
        }
        for lane in &self.last_workers {
            let fork = self.metrics.fork();
            fork.histogram("exec.worker.wall_ns").record(lane.wall_ns);
            fork.histogram("exec.worker.rows").record(lane.rows);
            self.metrics.merge_from(&fork);
        }
    }

    fn run_inner(&mut self, pt: &Pt) -> Result<Batch, ExecError> {
        #[cfg(debug_assertions)]
        self.verify(pt)?;
        let plan = self.lower(pt)?;
        self.prepare_temps(&plan);
        self.db
            .set_temp_budget(self.config.memory_budget_pages as usize);
        let (mut rows, ops, fix_deltas, workers) = pipeline::execute(
            &plan,
            self.db,
            self.indexes,
            self.methods,
            &self.counters,
            &self.temps,
            &self.nl_mats,
            self.config.max_fix_iterations,
            &self.obs,
            self.config.threads,
        )
        .map(|(rows, ops, fix_deltas, workers)| {
            (
                Batch {
                    cols: plan.root.cols().to_vec(),
                    rows,
                },
                ops,
                fix_deltas,
                workers,
            )
        })?;
        self.last_ops = ops;
        self.last_fix_deltas = fix_deltas;
        self.last_workers = workers;
        self.last_plan = Some(plan);
        #[cfg(debug_assertions)]
        self.assert_bounds(pt);
        rows.dedup();
        Ok(rows)
    }

    /// Debug-build soundness assertion: after every run, each observed
    /// per-operator counter must lie inside the static analyzer's
    /// interval (`AB001`–`AB003`). A violation is an analyzer bug or an
    /// analysis/lowering divergence, never acceptable noise.
    #[cfg(debug_assertions)]
    fn assert_bounds(&self, pt: &Pt) {
        let stats = oorq_storage::DbStats::collect(self.db);
        let analyzer = oorq_analysis::Analyzer {
            catalog: self.db.catalog(),
            physical: self.db.physical(),
            stats: &stats,
            params: oorq_cost::CostParams::default(),
            config: oorq_analysis::AnalyzerConfig {
                max_fix_iterations: self.config.max_fix_iterations as u64,
            },
        };
        // A plan the analyzer cannot type was already vetted by the
        // verifier; bounds are simply unavailable for it.
        let Ok(analysis) = analyzer.analyze_with_temps(pt, self.temp_fields.clone()) else {
            return;
        };
        // Exchange/Merge wrappers share their input's (or union's) PT
        // node but do no per-row work of their own: their exclusive
        // counters are ~0, which would trip nodes whose *lower* data
        // bound is positive. The wrapped operators' merged counters are
        // checked in full, so skipping the wrappers loses nothing.
        let ops: Vec<oorq_analysis::ObservedOp> = self
            .last_ops
            .iter()
            .filter(|o| !o.label.starts_with("Exchange") && !o.label.starts_with("Merge"))
            .map(|o| oorq_analysis::ObservedOp {
                pt_node: o.pt_node,
                label: o.label.clone(),
                rows_out: o.rows_out,
                page_reads: o.page_reads,
                page_hits: o.page_hits,
                index_reads: o.index_reads,
                page_writes: o.page_writes,
            })
            .collect();
        let fixes: Vec<oorq_analysis::ObservedFix> = self
            .last_fix_deltas
            .iter()
            .map(|c| oorq_analysis::ObservedFix {
                pt_node: c.pt_node,
                iterations: (c.deltas.len() as u64).saturating_sub(1),
            })
            .collect();
        let report = oorq_analysis::check_observed(&analysis, &ops, &fixes);
        debug_assert!(
            report.is_clean(),
            "static bounds violated:\n{}",
            report.render()
        );
    }

    /// Lower the PT to a physical plan; in debug builds, verify the
    /// lowering with the physical-plan lint pass.
    fn lower(&self, pt: &Pt) -> Result<PhysPlan, ExecError> {
        let env = PtEnv {
            catalog: self.db.catalog(),
            physical: self.db.physical(),
            temp_fields: self.temp_fields.clone(),
        };
        let plan = oorq_pt::lower_with(&env, pt, &self.parallel).map_err(lower_err)?;
        #[cfg(debug_assertions)]
        {
            let report = oorq_lint::verify_phys(&env, &plan);
            if !report.is_clean() {
                let rendered: String = report.errors().map(|d| format!("{d}\n")).collect();
                return Err(ExecError::PlanLint(rendered));
            }
        }
        Ok(plan)
    }

    /// Run the plan verifier at the executor boundary.
    #[cfg(debug_assertions)]
    fn verify(&self, pt: &Pt) -> Result<(), ExecError> {
        let env = PtEnv {
            catalog: self.db.catalog(),
            physical: self.db.physical(),
            temp_fields: self.temp_fields.clone(),
        };
        let report = oorq_lint::verify_pt(&env, pt);
        if report.is_clean() {
            return Ok(());
        }
        let rendered: String = report.errors().map(|d| format!("{d}\n")).collect();
        Err(ExecError::PlanLint(rendered))
    }

    /// Create (or reuse) the accumulator/delta temporaries of every
    /// fixpoint in the plan, and register their shapes for subsequent
    /// lowerings. Creation needs `&mut Database`; the streaming pipeline
    /// itself runs over `&Database`.
    fn prepare_temps(&mut self, plan: &PhysPlan) {
        let mut fixes: Vec<(String, Vec<(String, ResolvedType)>)> = Vec::new();
        let mut mats: Vec<(usize, Vec<ResolvedType>)> = Vec::new();
        plan.root.visit(&mut |op| match op {
            PhysOp::FixPoint { temp, fields, .. } => {
                fixes.push((temp.clone(), fields.clone()));
            }
            PhysOp::NlJoin {
                meta,
                rescan_inner: false,
                mat_types,
                ..
            } => {
                mats.push((meta.id, mat_types.clone()));
            }
            _ => {}
        });
        for (temp, fields) in fixes {
            let types: Vec<ResolvedType> = fields.iter().map(|(_, t)| t.clone()).collect();
            self.temp_fields.insert(temp.clone(), fields);
            if !self.temps.contains_key(&temp) {
                let acc = self.db.create_temp(temp.clone(), types.clone());
                let delta = self.db.create_temp(format!("{temp}#delta"), types);
                self.temps.insert(temp, (acc, delta));
            }
        }
        // Assign every materializing nested loop a page-store temporary
        // from the per-shape pool (growing it as needed), so two joins in
        // one plan — e.g. parallel merge legs — never share a breaker.
        self.nl_mats.clear();
        let mut used: HashMap<Vec<ResolvedType>, usize> = HashMap::new();
        for (op_id, types) in mats {
            let n = used.entry(types.clone()).or_insert(0);
            let pool = self.nl_mat_pool.entry(types.clone()).or_default();
            if *n == pool.len() {
                let name = format!("#mat{}", pool.len());
                pool.push(self.db.create_temp(name, types));
            }
            self.nl_mats.insert(op_id, pool[*n]);
            *n += 1;
        }
    }
}

/// Operator *kind* of a physical-operator label: its leading
/// alphanumeric run (`EntityScan(Composer)` → `EntityScan`,
/// `Exchange(x2)` → `Exchange`) — the grouping key of the
/// `exec.op.<kind>.*` metric series.
pub fn op_kind(label: &str) -> &str {
    let end = label
        .find(|c: char| !c.is_ascii_alphanumeric())
        .unwrap_or(label.len());
    &label[..end]
}

/// Map lowering failures onto the executor's error vocabulary (the
/// errors the tree-walking interpreter raised at runtime for the same
/// plans).
fn lower_err(e: PtError) -> ExecError {
    match e {
        PtError::FixBodyNotUnion => ExecError::BadFixpoint("Fix body must be a Union".into()),
        PtError::FixNotRecursive(t) => {
            ExecError::BadFixpoint(format!("neither union side references `{t}`"))
        }
        PtError::UnknownTemp(n) => ExecError::BadFixpoint(format!("temp `{n}` not built")),
        PtError::TempAsEntity(n) => {
            ExecError::BadFixpoint(format!("temporary `{n}` used as entity"))
        }
        PtError::UnionShapeMismatch => ExecError::UnionMismatch,
        PtError::NotAPathIndex => ExecError::MissingIndex,
        other => ExecError::BadPlan(other.to_string()),
    }
}
