//! The PT interpreter: a bottom-up, operand-order executor with honest
//! page-I/O accounting through the store's buffer manager.

use std::collections::{HashMap, HashSet};

use oorq_index::IndexSet;
use oorq_pt::{AccessMethod, JoinAlgo, Pt, PtEnv};
use oorq_query::{CmpOp, Expr};
use oorq_schema::ResolvedType;
use oorq_storage::{Database, EntityId, EntitySource, IoStats, Oid, Value};

use crate::error::ExecError;
use crate::eval::{Batch, Counters, EvalCtx};
use crate::methods::MethodRegistry;

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Safety bound on semi-naive iterations.
    pub max_fix_iterations: u32,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            max_fix_iterations: 10_000,
        }
    }
}

/// A report of the resources one execution consumed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecReport {
    /// Page I/O accumulated by the store.
    pub io: IoStats,
    /// Predicate evaluations performed.
    pub evals: u64,
    /// Method invocations performed.
    pub method_calls: u64,
}

impl ExecReport {
    /// Weighted total comparable with the cost model's units.
    pub fn total(&self, pr: f64, ev: f64) -> f64 {
        (self.io.page_reads + self.io.index_reads + self.io.page_writes) as f64 * pr
            + self.evals as f64 * ev
    }
}

/// The PT executor.
pub struct Executor<'a> {
    db: &'a mut Database,
    indexes: &'a IndexSet,
    methods: &'a MethodRegistry,
    counters: Counters,
    config: ExecConfig,
    /// Per-temporary: (accumulator entity, delta entity).
    temps: HashMap<String, (EntityId, EntityId)>,
    /// Column names (unqualified) of each temporary.
    temp_cols: HashMap<String, Vec<String>>,
    /// Field shapes of temporaries (for `PtEnv` typing).
    temp_fields: HashMap<String, Vec<(String, ResolvedType)>>,
    /// Temporaries currently bound to their delta (inside a fixpoint
    /// iteration).
    delta_active: HashSet<String>,
}

impl<'a> Executor<'a> {
    /// New executor over a store, built indexes and method registry.
    pub fn new(db: &'a mut Database, indexes: &'a IndexSet, methods: &'a MethodRegistry) -> Self {
        Executor {
            db,
            indexes,
            methods,
            counters: Counters::default(),
            config: ExecConfig::default(),
            temps: HashMap::new(),
            temp_cols: HashMap::new(),
            temp_fields: HashMap::new(),
            delta_active: HashSet::new(),
        }
    }

    /// Override the configuration.
    pub fn with_config(mut self, config: ExecConfig) -> Self {
        self.config = config;
        self
    }

    /// Reset I/O and CPU counters (e.g. after a warm-up run).
    pub fn reset_counters(&mut self) {
        self.db.reset_io();
        self.counters = Counters::default();
    }

    /// The resources consumed so far.
    pub fn report(&self) -> ExecReport {
        ExecReport {
            io: self.db.io_stats(),
            evals: self.counters.evals.get(),
            method_calls: self.counters.method_calls.get(),
        }
    }

    /// Execute a plan and return its (deduplicated) answer.
    ///
    /// In debug builds the plan is first checked against the static
    /// verifier: an ill-formed plan is rejected with
    /// [`ExecError::PlanLint`] before it can touch the store.
    pub fn run(&mut self, pt: &Pt) -> Result<Batch, ExecError> {
        #[cfg(debug_assertions)]
        self.verify(pt)?;
        let mut out = self.exec(pt)?;
        out.dedup();
        Ok(out)
    }

    /// Run the plan verifier at the executor boundary.
    #[cfg(debug_assertions)]
    fn verify(&self, pt: &Pt) -> Result<(), ExecError> {
        let env = PtEnv {
            catalog: self.db.catalog(),
            physical: self.db.physical(),
            temp_fields: self.temp_fields.clone(),
        };
        let report = oorq_lint::verify_pt(&env, pt);
        if report.is_clean() {
            return Ok(());
        }
        let rendered: String = report.errors().map(|d| format!("{d}\n")).collect();
        Err(ExecError::PlanLint(rendered))
    }

    fn ctx(&self) -> EvalCtx<'_> {
        EvalCtx {
            db: self.db,
            methods: self.methods,
            counters: &self.counters,
            account_io: true,
        }
    }

    fn exec(&mut self, pt: &Pt) -> Result<Batch, ExecError> {
        match pt {
            Pt::Entity { id, var } => self.scan_entity(*id, var),
            Pt::Temp { name, var } => {
                let (acc, delta) = *self
                    .temps
                    .get(name)
                    .ok_or_else(|| ExecError::BadFixpoint(format!("temp `{name}` not built")))?;
                let entity = if self.delta_active.contains(name) {
                    delta
                } else {
                    acc
                };
                let fields = self.temp_cols.get(name).cloned().unwrap_or_default();
                let cols: Vec<String> = fields.iter().map(|f| format!("{var}.{f}")).collect();
                let rows = self.db.scan(entity).into_iter().map(|r| r.values).collect();
                Ok(Batch { cols, rows })
            }
            Pt::Sel {
                pred,
                method,
                input,
            } => match method {
                AccessMethod::Scan => {
                    let batch = self.exec(input)?;
                    self.filter(batch, pred)
                }
                AccessMethod::Index(idx) => self.indexed_select(*idx, pred, input),
            },
            Pt::Proj { cols, input } => {
                let batch = self.exec(input)?;
                let ctx = self.ctx();
                let mut out = Batch::new(cols.iter().map(|(n, _)| n.clone()).collect());
                for row in &batch.rows {
                    let mut new_row = Vec::with_capacity(cols.len());
                    for (_, e) in cols {
                        new_row.push(ctx.eval(e, &batch.cols, row)?);
                    }
                    out.rows.push(new_row);
                }
                out.dedup();
                Ok(out)
            }
            Pt::IJ { on, out, input, .. } => {
                let batch = self.exec(input)?;
                let ctx = self.ctx();
                let mut cols = batch.cols.clone();
                cols.push(out.clone());
                let mut result = Batch::new(cols);
                for row in &batch.rows {
                    for m in ctx.eval_members(on, &batch.cols, row)? {
                        if let Value::Oid(o) = m {
                            // Touch the sub-object's page: the implicit
                            // join is what pays the dereference.
                            let _ = ctx.db.read_object(o)?;
                            let mut r = row.clone();
                            r.push(Value::Oid(o));
                            result.rows.push(r);
                        }
                    }
                }
                Ok(result)
            }
            Pt::PIJ {
                index,
                on,
                outs,
                input,
                ..
            } => {
                let pix = self.indexes.path(*index).ok_or(ExecError::MissingIndex)?;
                let batch = self.exec(input)?;
                let ctx = self.ctx();
                let mut cols = batch.cols.clone();
                cols.extend(outs.iter().cloned());
                let mut result = Batch::new(cols);
                for row in &batch.rows {
                    for m in ctx.eval_members(on, &batch.cols, row)? {
                        let Value::Oid(head) = m else { continue };
                        for tail in pix.probe(ctx.db, head) {
                            if tail.len() < outs.len() {
                                continue;
                            }
                            let mut r = row.clone();
                            for o in tail.iter().take(outs.len()) {
                                r.push(Value::Oid(*o));
                            }
                            result.rows.push(r);
                        }
                    }
                }
                Ok(result)
            }
            Pt::EJ {
                pred,
                algo,
                left,
                right,
            } => match algo {
                JoinAlgo::NestedLoop => self.nested_loop(pred, left, right),
                JoinAlgo::IndexJoin(idx) => self.index_join(*idx, pred, left, right),
            },
            Pt::Union { left, right } => {
                let l = self.exec(left)?;
                let r = self.exec(right)?;
                let r = l.aligned(r)?;
                let mut out = l;
                out.rows.extend(r.rows);
                Ok(out)
            }
            Pt::Fix { temp, body } => self.fixpoint(temp, body),
        }
    }

    fn scan_entity(&mut self, id: EntityId, var: &str) -> Result<Batch, ExecError> {
        let desc = self.db.physical().entity(id).clone();
        match desc.source {
            EntitySource::Class(c) => {
                let mut out = Batch::new(vec![var.to_string()]);
                for row in self.db.scan(id) {
                    out.rows.push(vec![Value::Oid(Oid::new(c, row.key))]);
                }
                Ok(out)
            }
            EntitySource::Relation(r) => {
                let fields = self.db.catalog().relation(r).fields.clone();
                let cols = fields.iter().map(|(n, _)| format!("{var}.{n}")).collect();
                let mut out = Batch::new(cols);
                for row in self.db.scan(id) {
                    out.rows.push(row.values);
                }
                Ok(out)
            }
            EntitySource::Temporary => Err(ExecError::BadFixpoint(format!(
                "temporary `{}` used as entity",
                desc.name
            ))),
        }
    }

    fn filter(&self, mut batch: Batch, pred: &Expr) -> Result<Batch, ExecError> {
        let ctx = self.ctx();
        let cols = batch.cols.clone();
        let mut kept = Vec::new();
        for row in batch.rows.drain(..) {
            if ctx.truthy(pred, &cols, &row)? {
                kept.push(row);
            }
        }
        batch.rows = kept;
        Ok(batch)
    }

    /// Selection through a selection index: extract an `attr = literal`
    /// conjunct matching the index, probe, then apply the full predicate
    /// as a residual filter. Falls back to a scan when the predicate has
    /// no usable conjunct.
    fn indexed_select(
        &mut self,
        idx: oorq_storage::IndexId,
        pred: &Expr,
        input: &Pt,
    ) -> Result<Batch, ExecError> {
        let Some(six) = self.indexes.selection(idx) else {
            return Err(ExecError::MissingIndex);
        };
        let Pt::Entity { id, var } = input else {
            let batch = self.exec(input)?;
            return self.filter(batch, pred);
        };
        let desc = self.db.physical().entity(*id).clone();
        let EntitySource::Class(class) = desc.source else {
            let batch = self.exec(input)?;
            return self.filter(batch, pred);
        };
        let attr_name = self
            .db
            .catalog()
            .attribute(six.class, six.attr)
            .name
            .clone();
        // Find `var.attr = literal` among the conjuncts.
        let mut key: Option<Value> = None;
        for c in pred.conjuncts() {
            if let Expr::Cmp {
                op: CmpOp::Eq,
                lhs,
                rhs,
            } = c
            {
                let (path, lit) = match (lhs.as_ref(), rhs.as_ref()) {
                    (Expr::Path { base, steps }, Expr::Lit(l)) => ((base, steps), l),
                    (Expr::Lit(l), Expr::Path { base, steps }) => ((base, steps), l),
                    _ => continue,
                };
                if path.0 == var && path.1.len() == 1 && path.1[0] == attr_name {
                    key = Some(crate::eval::lit_value(lit));
                    break;
                }
            }
        }
        let Some(key) = key else {
            let batch = self.exec(input)?;
            return self.filter(batch, pred);
        };
        let oids = six.probe(self.db, &key);
        let mut batch = Batch::new(vec![var.to_string()]);
        for o in oids {
            if o.class == class {
                // Fetch the object's page (the probe yields only oids).
                let _ = self.db.read_object(o)?;
                batch.rows.push(vec![Value::Oid(o)]);
            }
        }
        self.filter(batch, pred)
    }

    /// True when re-executing the subtree per outer row is the honest
    /// nested-loop behaviour (leaf-ish inners). Complex inners are
    /// materialized once.
    fn rescannable(pt: &Pt) -> bool {
        match pt {
            Pt::Entity { .. } | Pt::Temp { .. } => true,
            Pt::Sel {
                input,
                method: AccessMethod::Scan,
                ..
            }
            | Pt::Proj { input, .. } => Self::rescannable(input),
            _ => false,
        }
    }

    fn nested_loop(&mut self, pred: &Expr, left: &Pt, right: &Pt) -> Result<Batch, ExecError> {
        let l = self.exec(left)?;
        let mut out: Option<Batch> = None;
        if Self::rescannable(right) {
            // Honest nested loop: rescan the leaf-ish inner through the
            // buffer manager for every outer row.
            for lrow in &l.rows {
                let r = self.exec(right)?;
                let ctx = self.ctx();
                let out_batch = out.get_or_insert_with(|| {
                    let mut cols = l.cols.clone();
                    cols.extend(r.cols.iter().cloned());
                    Batch::new(cols)
                });
                for rrow in &r.rows {
                    let mut combined = lrow.clone();
                    combined.extend(rrow.iter().cloned());
                    if ctx.truthy(pred, &out_batch.cols, &combined)? {
                        out_batch.rows.push(combined);
                    }
                }
            }
        } else {
            // Complex inner: materialize once.
            let r = self.exec(right)?;
            let mut cols = l.cols.clone();
            cols.extend(r.cols.iter().cloned());
            let mut out_batch = Batch::new(cols);
            let ctx = self.ctx();
            for lrow in &l.rows {
                for rrow in &r.rows {
                    let mut combined = lrow.clone();
                    combined.extend(rrow.iter().cloned());
                    if ctx.truthy(pred, &out_batch.cols, &combined)? {
                        out_batch.rows.push(combined);
                    }
                }
            }
            out = Some(out_batch);
        }
        Ok(out.unwrap_or_else(|| Batch::new(l.cols.clone())))
    }

    fn index_join(
        &mut self,
        idx: oorq_storage::IndexId,
        pred: &Expr,
        left: &Pt,
        right: &Pt,
    ) -> Result<Batch, ExecError> {
        let Some(six) = self.indexes.selection(idx) else {
            return Err(ExecError::MissingIndex);
        };
        let Pt::Entity { id, var } = right else {
            return self.nested_loop(pred, left, right);
        };
        let desc = self.db.physical().entity(*id).clone();
        let EntitySource::Class(class) = desc.source else {
            return self.nested_loop(pred, left, right);
        };
        let l = self.exec(left)?;
        let attr_name = self
            .db
            .catalog()
            .attribute(six.class, six.attr)
            .name
            .clone();
        // Find the equality conjunct `outer-expr = var.attr`.
        let mut outer_expr: Option<Expr> = None;
        for c in pred.conjuncts() {
            if let Expr::Cmp {
                op: CmpOp::Eq,
                lhs,
                rhs,
            } = c
            {
                let matches_inner = |e: &Expr| {
                    matches!(e, Expr::Path { base, steps }
                             if base == var && steps.len() == 1 && steps[0] == attr_name)
                };
                if matches_inner(rhs) && !lhs.vars().contains(var) {
                    outer_expr = Some((**lhs).clone());
                    break;
                }
                if matches_inner(lhs) && !rhs.vars().contains(var) {
                    outer_expr = Some((**rhs).clone());
                    break;
                }
            }
        }
        let Some(outer_expr) = outer_expr else {
            return self.nested_loop(pred, left, right);
        };
        let mut cols = l.cols.clone();
        cols.push(var.clone());
        let mut out = Batch::new(cols);
        for lrow in &l.rows {
            let keys = {
                let ctx = self.ctx();
                ctx.eval_members(&outer_expr, &l.cols, lrow)?
            };
            for key in keys {
                let oids = six.probe(self.db, &key);
                for o in oids {
                    if o.class != class {
                        continue;
                    }
                    let _ = self.db.read_object(o)?;
                    let mut combined = lrow.clone();
                    combined.push(Value::Oid(o));
                    let ctx = self.ctx();
                    if ctx.truthy(pred, &out.cols, &combined)? {
                        out.rows.push(combined);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Semi-naive fixpoint: materialize the base into the accumulator and
    /// the delta, then iterate the recursive side over the delta until no
    /// new rows appear.
    fn fixpoint(&mut self, temp: &str, body: &Pt) -> Result<Batch, ExecError> {
        let Pt::Union { left, right } = body else {
            return Err(ExecError::BadFixpoint("Fix body must be a Union".into()));
        };
        let (base, rec) = if left.references_temp(temp) {
            (right.as_ref(), left.as_ref())
        } else {
            (left.as_ref(), right.as_ref())
        };
        if !rec.references_temp(temp) {
            return Err(ExecError::BadFixpoint(format!(
                "neither union side references `{temp}`"
            )));
        }

        // Shape of the temporary, from the base side.
        let (field_names, field_types) = {
            let env = PtEnv {
                catalog: self.db.catalog(),
                physical: self.db.physical(),
                temp_fields: self.temp_fields.clone(),
            };
            let cols = base
                .output_columns(&env)
                .map_err(|e| ExecError::BadFixpoint(e.to_string()))?;
            let names: Vec<String> = cols.iter().map(|(n, _)| n.clone()).collect();
            let types: Vec<ResolvedType> = cols.iter().map(|(_, t)| t.clone()).collect();
            (names, types)
        };
        self.temp_fields.insert(
            temp.to_string(),
            field_names
                .iter()
                .cloned()
                .zip(field_types.iter().cloned())
                .collect(),
        );
        self.temp_cols.insert(temp.to_string(), field_names.clone());
        if !self.temps.contains_key(temp) {
            let acc = self.db.create_temp(temp.to_string(), field_types.clone());
            let delta = self
                .db
                .create_temp(format!("{temp}#delta"), field_types.clone());
            self.temps.insert(temp.to_string(), (acc, delta));
        }
        let (acc_e, delta_e) = self.temps[temp];
        self.db.truncate_temp(acc_e)?;
        self.db.truncate_temp(delta_e)?;

        // Base case.
        let mut base_batch = self.exec(base)?;
        base_batch.dedup();
        let mut acc_rows: Vec<Vec<Value>> = Vec::new();
        let mut seen: HashSet<Vec<Value>> = HashSet::new();
        for row in &base_batch.rows {
            seen.insert(row.clone());
            acc_rows.push(row.clone());
            self.db.append_temp(acc_e, row.clone())?;
            self.db.append_temp(delta_e, row.clone())?;
        }

        // Iterate.
        let mut iterations = 0u32;
        while self.db.entity_len(delta_e) > 0 {
            iterations += 1;
            if iterations > self.config.max_fix_iterations {
                return Err(ExecError::FixpointDiverged(temp.to_string()));
            }
            self.delta_active.insert(temp.to_string());
            let rec_batch = self.exec(rec);
            self.delta_active.remove(temp);
            let rec_batch = base_batch.aligned(rec_batch?)?;
            self.db.truncate_temp(delta_e)?;
            for row in rec_batch.rows {
                if seen.insert(row.clone()) {
                    acc_rows.push(row.clone());
                    self.db.append_temp(acc_e, row.clone())?;
                    self.db.append_temp(delta_e, row)?;
                }
            }
        }
        Ok(Batch {
            cols: field_names,
            rows: acc_rows,
        })
    }
}
