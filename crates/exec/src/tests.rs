//! Executor and reference-evaluator tests on generated music data.

use std::sync::Arc;

use oorq_datagen::{MusicConfig, MusicDb};
use oorq_index::{IndexSet, PathIndex, SelectionIndex};
use oorq_pt::Pt;
use oorq_query::paper::{fig3_query, influencer_view, music_catalog};
use oorq_query::Expr;
use oorq_storage::Value;

use crate::*;

fn small_music() -> MusicDb {
    let cat = Arc::new(music_catalog());
    MusicDb::generate(
        cat,
        MusicConfig {
            chains: 3,
            chain_len: 4,
            works_per_composer: 2,
            instruments_per_work: 2,
            harpsichord_fraction: 0.5,
            ..Default::default()
        },
    )
}

#[test]
fn scan_and_select_by_name() {
    let mut m = small_music();
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let idx = IndexSet::new();
    let methods = MethodRegistry::with_music_methods(m.db.catalog());
    let mut ex = Executor::new(&mut m.db, &idx, &methods);
    let plan = Pt::sel(
        Expr::path("x", &["name"]).eq(Expr::text("Bach")),
        Pt::entity(e, "x"),
    );
    let out = ex.run(&plan).unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.rows[0][0], Value::Oid(m.bach));
    let report = ex.report();
    assert!(report.io.fetches() > 0, "scan accounted I/O");
    assert!(report.evals >= 12, "one comparison per composer");
}

#[test]
fn indexed_select_matches_scan_with_less_io() {
    let mut m = MusicDb::generate(
        Arc::new(music_catalog()),
        MusicConfig {
            chains: 20,
            chain_len: 10,
            ..Default::default()
        },
    );
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let mut idx = IndexSet::new();
    let sid = idx.add_selection(SelectionIndex::build(&mut m.db, m.composer, m.name_attr));
    let methods = MethodRegistry::new();
    let pred = Expr::path("x", &["name"]).eq(Expr::text("Bach"));
    let mut ex = Executor::new(&mut m.db, &idx, &methods);

    ex.reset_counters();
    let scan_out = ex.run(&Pt::sel(pred.clone(), Pt::entity(e, "x"))).unwrap();
    let scan_reads = ex.report().io.page_reads;

    ex.reset_counters();
    let idx_plan = Pt::Sel {
        pred,
        method: oorq_pt::AccessMethod::Index(sid),
        input: Box::new(Pt::entity(e, "x")),
    };
    let idx_out = ex.run(&idx_plan).unwrap();
    let idx_reads = ex.report().io.page_reads;
    assert_eq!(scan_out.rows, idx_out.rows);
    assert!(
        idx_reads < scan_reads,
        "index probe reads fewer data pages: {idx_reads} vs {scan_reads}"
    );
}

#[test]
fn implicit_join_fans_out_over_works() {
    let mut m = small_music();
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let t = m.db.physical().entities_of_class(m.composition)[0];
    let idx = IndexSet::new();
    let methods = MethodRegistry::new();
    let plan = Pt::IJ {
        on: Expr::path("x", &["works"]),
        step: oorq_pt::IjStep::class_attr(m.db.catalog(), m.composer, m.works_attr),
        out: "w".into(),
        input: Box::new(Pt::entity(e, "x")),
        target: Box::new(Pt::entity(t, "wt")),
    };
    let mut ex = Executor::new(&mut m.db, &idx, &methods);
    let out = ex.run(&plan).unwrap();
    assert_eq!(out.len(), 12 * 2, "12 composers x 2 works");
    assert_eq!(out.cols, vec!["x".to_string(), "w".to_string()]);
}

#[test]
fn pij_equals_ij_chain() {
    let mut m = small_music();
    let mut idx = IndexSet::new();
    let pix = idx.add_path(PathIndex::build(
        &mut m.db,
        vec![
            (m.composer, m.works_attr),
            (m.composition, m.instruments_attr),
        ],
    ));
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let ce = m.db.physical().entities_of_class(m.composition)[0];
    let ie = m.db.physical().entities_of_class(m.instrument)[0];
    let methods = MethodRegistry::new();

    let ij_chain = Pt::IJ {
        on: Expr::path("w", &["instruments"]),
        step: oorq_pt::IjStep::class_attr(m.db.catalog(), m.composition, m.instruments_attr),
        out: "ins".into(),
        input: Box::new(Pt::IJ {
            on: Expr::path("x", &["works"]),
            step: oorq_pt::IjStep::class_attr(m.db.catalog(), m.composer, m.works_attr),
            out: "w".into(),
            input: Box::new(Pt::entity(e, "x")),
            target: Box::new(Pt::entity(ce, "ct")),
        }),
        target: Box::new(Pt::entity(ie, "it")),
    };
    let pij = Pt::PIJ {
        index: pix,
        on: Expr::var("x"),
        outs: vec!["w".into(), "ins".into()],
        input: Box::new(Pt::entity(e, "x")),
        targets: vec![Pt::entity(ce, "ct"), Pt::entity(ie, "it")],
    };
    let mut ex = Executor::new(&mut m.db, &idx, &methods);
    let a = ex.run(&ij_chain).unwrap();
    ex.reset_counters();
    let b = ex.run(&pij).unwrap();
    let mut ra = a.rows.clone();
    let rb_aligned = a.aligned(b.clone()).unwrap();
    let mut rb = rb_aligned.rows.clone();
    ra.sort();
    rb.sort();
    assert_eq!(ra, rb, "PIJ must produce the same triples as the IJ chain");
    // The PIJ touches only index pages for the traversal.
    assert!(ex.report().io.index_reads > 0);
}

#[test]
fn nested_loop_and_index_join_agree() {
    let mut m = small_music();
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let mut idx = IndexSet::new();
    let sid = idx.add_selection(SelectionIndex::build(&mut m.db, m.composer, m.master_attr));
    let methods = MethodRegistry::new();
    let pred = Expr::path("l", &["master"]).eq(Expr::path("r", &["master"]));
    // pred: l.master = r.master -- needs the index on master keyed by oid.
    let nl = Pt::ej(pred.clone(), Pt::entity(e, "l"), Pt::entity(e, "r"));
    let ij = Pt::EJ {
        pred,
        algo: oorq_pt::JoinAlgo::IndexJoin(sid),
        left: Box::new(Pt::entity(e, "l")),
        right: Box::new(Pt::entity(e, "r")),
    };
    let mut ex = Executor::new(&mut m.db, &idx, &methods);
    let a = ex.run(&nl).unwrap();
    let b = ex.run(&ij).unwrap();
    let mut ra = a.rows.clone();
    let mut rb = b.rows.clone();
    ra.sort();
    rb.sort();
    assert_eq!(ra, rb);
}

/// Build the translated Influencer fixpoint by hand (what translate +
/// generatePT will produce automatically).
fn influencer_fix(m: &MusicDb) -> Pt {
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let base = Pt::proj(
        vec![
            ("master".into(), Expr::path("x", &["master"])),
            ("disciple".into(), Expr::var("x")),
            ("gen".into(), Expr::int(1)),
        ],
        Pt::sel(
            Expr::path("x", &["master"]).ne(Expr::Lit(oorq_query::Literal::Null)),
            Pt::entity(e, "x"),
        ),
    );
    let rec = Pt::proj(
        vec![
            ("master".into(), Expr::var("i.master")),
            ("disciple".into(), Expr::var("x")),
            ("gen".into(), Expr::var("i.gen").add(Expr::int(1))),
        ],
        Pt::ej(
            Expr::var("i.disciple").eq(Expr::path("x", &["master"])),
            Pt::temp("Influencer", "i"),
            Pt::entity(e, "x"),
        ),
    );
    Pt::fix("Influencer", Pt::union(base, rec))
}

#[test]
fn seminaive_fixpoint_computes_transitive_closure() {
    let mut m = small_music();
    let idx = IndexSet::new();
    let methods = MethodRegistry::new();
    let plan = influencer_fix(&m);
    let mut ex = Executor::new(&mut m.db, &idx, &methods);
    let out = ex.run(&plan).unwrap();
    // 3 chains of length 4: per chain pairs = 3+2+1 = 6; total 18.
    assert_eq!(out.len(), 18);
    assert_eq!(out.cols, vec!["master", "disciple", "gen"]);
    // Max generation is 3.
    let max_gen = out
        .rows
        .iter()
        .map(|r| r[2].as_int().unwrap())
        .max()
        .unwrap();
    assert_eq!(max_gen, 3);
    // Temp writes were accounted.
    assert!(ex.report().io.page_writes > 0);
}

#[test]
fn fixpoint_then_selection_matches_reference_evaluator() {
    let mut m = small_music();
    let cat = m.db.catalog_rc();
    // Reference: the Figure 3 query over the expanded Influencer view.
    let mut q = fig3_query(&cat);
    influencer_view(&cat).expand(&mut q, &cat).unwrap();
    q.normalize(&cat).unwrap();
    let methods = MethodRegistry::new();
    let reference = eval_query_graph(&m.db, &methods, &q).unwrap();

    // Hand-built PT for the same query: selection after the fixpoint.
    // gen >= 2 here (the tiny DB has chains of length 4, so gen reaches 3).
    let fix = influencer_fix(&m);
    let sel = Pt::sel(
        Expr::path("i", &["master", "works", "instruments", "name"])
            .eq(Expr::text("harpsichord"))
            .and(Expr::path("i", &["gen"]).ge(Expr::int(6))),
        Pt::proj(
            vec![
                ("i.master".into(), Expr::var("master")),
                ("i.disciple".into(), Expr::var("disciple")),
                ("i.gen".into(), Expr::var("gen")),
            ],
            fix,
        ),
    );
    let plan = Pt::proj(
        vec![("name".into(), Expr::path("i", &["disciple", "name"]))],
        sel,
    );
    let idx = IndexSet::new();
    let mut ex = Executor::new(&mut m.db, &idx, &methods);
    let got = ex.run(&plan).unwrap();
    // With chains of length 4, gen >= 6 selects nothing — in both.
    assert_eq!(reference.len(), got.len());
    assert!(got.is_empty());
}

#[test]
fn fig3_with_reachable_generation_matches_reference() {
    let mut m = MusicDb::generate(
        Arc::new(music_catalog()),
        MusicConfig {
            chains: 2,
            chain_len: 8,
            harpsichord_fraction: 0.6,
            ..Default::default()
        },
    );
    let cat = m.db.catalog_rc();
    // Like Figure 3 but gen >= 3 so the answer is non-empty.
    let influencer = cat.relation_by_name("Influencer").unwrap();
    let mut q = oorq_query::QueryGraph::new(oorq_query::NameRef::Derived("Answer".into()));
    q.add_spj(
        oorq_query::NameRef::Derived("Answer".into()),
        oorq_query::SpjNode {
            inputs: vec![oorq_query::QArc::new(
                oorq_query::NameRef::Relation(influencer),
                "i",
            )],
            pred: Expr::path("i", &["master", "works", "instruments", "name"])
                .eq(Expr::text("harpsichord"))
                .and(Expr::path("i", &["gen"]).ge(Expr::int(3))),
            out_proj: vec![("name".into(), Expr::path("i", &["disciple", "name"]))],
        },
    );
    influencer_view(&cat).expand(&mut q, &cat).unwrap();
    let methods = MethodRegistry::new();
    let reference = eval_query_graph(&m.db, &methods, &q).unwrap();
    assert!(!reference.is_empty(), "some disciples qualify");

    let fix = influencer_fix(&m);
    let plan = Pt::proj(
        vec![("name".into(), Expr::path("i", &["disciple", "name"]))],
        Pt::sel(
            Expr::path("i", &["master", "works", "instruments", "name"])
                .eq(Expr::text("harpsichord"))
                .and(Expr::path("i", &["gen"]).ge(Expr::int(3))),
            Pt::proj(
                vec![
                    ("i.master".into(), Expr::var("master")),
                    ("i.disciple".into(), Expr::var("disciple")),
                    ("i.gen".into(), Expr::var("gen")),
                ],
                fix,
            ),
        ),
    );
    let idx = IndexSet::new();
    let mut ex = Executor::new(&mut m.db, &idx, &methods);
    let got = ex.run(&plan).unwrap();
    let mut a: Vec<_> = reference.rows.clone();
    let mut b: Vec<_> = got.rows.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b, "PT execution must match the reference semantics");
}

#[test]
fn computed_attribute_dispatches_to_method() {
    let mut m = small_music();
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let idx = IndexSet::new();
    let methods = MethodRegistry::with_music_methods(m.db.catalog());
    let mut ex = Executor::new(&mut m.db, &idx, &methods);
    let plan = Pt::proj(
        vec![("age".into(), Expr::path("x", &["age"]))],
        Pt::entity(e, "x"),
    );
    let out = ex.run(&plan).unwrap();
    assert!(!out.is_empty());
    assert!(ex.report().method_calls >= out.len() as u64);
    // Missing method errors cleanly.
    let empty = MethodRegistry::new();
    let mut ex2 = Executor::new(&mut m.db, &idx, &empty);
    let err = ex2.run(&Pt::proj(
        vec![("age".into(), Expr::path("x", &["age"]))],
        Pt::entity(e, "x"),
    ));
    assert!(matches!(err, Err(ExecError::MissingMethod(_))));
}

#[test]
fn union_aligns_columns() {
    let mut m = small_music();
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let idx = IndexSet::new();
    let methods = MethodRegistry::new();
    let mut ex = Executor::new(&mut m.db, &idx, &methods);
    let l = Pt::proj(
        vec![
            ("a".into(), Expr::var("x")),
            ("n".into(), Expr::path("x", &["name"])),
        ],
        Pt::entity(e, "x"),
    );
    let r = Pt::proj(
        vec![
            ("n".into(), Expr::path("x", &["name"])),
            ("a".into(), Expr::var("x")),
        ],
        Pt::entity(e, "x"),
    );
    let out = ex.run(&Pt::union(l, r)).unwrap();
    // Same rows from both sides after alignment; dedup leaves one copy.
    assert_eq!(out.len(), 12);
}

#[test]
fn reference_evaluator_handles_fig3_shape() {
    let m = small_music();
    let cat = m.db.catalog_rc();
    let mut q = fig3_query(&cat);
    influencer_view(&cat).expand(&mut q, &cat).unwrap();
    let methods = MethodRegistry::new();
    // Unnormalized and normalized agree.
    let a = eval_query_graph(&m.db, &methods, &q).unwrap();
    let mut qn = q.clone();
    qn.normalize(&cat).unwrap();
    let b = eval_query_graph(&m.db, &methods, &qn).unwrap();
    let mut ra = a.rows.clone();
    let mut rb = b.rows.clone();
    ra.sort();
    rb.sort();
    assert_eq!(ra, rb);
}

#[test]
fn clustered_execution_costs_less_io_than_scattered() {
    let cat = Arc::new(music_catalog());
    let cfg = MusicConfig {
        chains: 10,
        chain_len: 10,
        works_per_composer: 3,
        buffer_frames: 8,
        ..Default::default()
    };
    let run = |clustered: bool| {
        let mut m = MusicDb::generate(
            Arc::clone(&cat),
            MusicConfig {
                clustered,
                ..cfg.clone()
            },
        );
        let e = m.db.physical().entities_of_class(m.composer)[0];
        let t = m.db.physical().entities_of_class(m.composition)[0];
        let plan = Pt::IJ {
            on: Expr::path("x", &["works"]),
            step: oorq_pt::IjStep::class_attr(m.db.catalog(), m.composer, m.works_attr),
            out: "w".into(),
            input: Box::new(Pt::entity(e, "x")),
            target: Box::new(Pt::entity(t, "wt")),
        };
        let idx = IndexSet::new();
        let methods = MethodRegistry::new();
        let mut ex = Executor::new(&mut m.db, &idx, &methods);
        m_run(&mut ex, &plan)
    };
    fn m_run(ex: &mut Executor<'_>, plan: &Pt) -> u64 {
        ex.reset_counters();
        ex.run(plan).unwrap();
        ex.report().io.page_reads
    }
    let clustered = run(true);
    let scattered = run(false);
    assert!(
        clustered < scattered,
        "clustered IJ: {clustered} reads, scattered: {scattered}"
    );
}

#[test]
fn horizontally_decomposed_class_scans_union_of_fragments() {
    let mut m = small_music();
    // Split composers by name parity.
    let frags =
        m.db.decompose_horizontal(
            m.composer,
            2,
            &["even oid".into(), "odd oid".into()],
            |vals| (vals[0].as_text().map(|s| s.len()).unwrap_or(0)) % 2,
        )
        .unwrap();
    // A union plan over the fragments enumerates every composer once.
    let plan = Pt::union(Pt::entity(frags[0], "x"), Pt::entity(frags[1], "x"));
    let idx = IndexSet::new();
    let methods = MethodRegistry::new();
    let mut ex = Executor::new(&mut m.db, &idx, &methods);
    let out = ex.run(&plan).unwrap();
    assert_eq!(out.len(), 12);
    // Attribute reads still route to the right fragment.
    let plan2 = Pt::proj(
        vec![("n".into(), Expr::path("x", &["name"]))],
        Pt::union(Pt::entity(frags[0], "x"), Pt::entity(frags[1], "x")),
    );
    let mut ex2 = Executor::new(&mut m.db, &idx, &methods);
    let out2 = ex2.run(&plan2).unwrap();
    assert_eq!(out2.len(), 12);
}

#[test]
fn expression_evaluation_edge_cases() {
    let mut m = small_music();
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let idx = IndexSet::new();
    let methods = MethodRegistry::new();
    // Or / Not / Add / float mixing.
    // Project the (unique) name alongside: Proj has set semantics and
    // birth years collide.
    let plan = Pt::proj(
        vec![
            ("n".into(), Expr::path("x", &["name"])),
            (
                "v".into(),
                Expr::path("x", &["birth_year"]).add(Expr::int(100)),
            ),
        ],
        Pt::sel(
            Expr::path("x", &["name"])
                .eq(Expr::text("Bach"))
                .or(Expr::Not(Box::new(
                    Expr::path("x", &["name"]).eq(Expr::text("Bach")),
                ))),
            Pt::entity(e, "x"),
        ),
    );
    let mut ex = Executor::new(&mut m.db, &idx, &methods);
    let out = ex.run(&plan).unwrap();
    assert_eq!(out.len(), 12, "tautology keeps everybody");
    for row in &out.rows {
        assert!(row[1].as_int().unwrap() >= 1700);
    }
    // Unknown column errors cleanly: the boundary verifier rejects the
    // plan in debug builds, the runtime reports it otherwise.
    let bad = Pt::sel(Expr::var("nope").eq(Expr::int(1)), Pt::entity(e, "x"));
    let mut ex2 = Executor::new(&mut m.db, &idx, &methods);
    let err = ex2.run(&bad).unwrap_err();
    if cfg!(debug_assertions) {
        assert!(matches!(err, ExecError::PlanLint(_)), "got {err:?}");
    } else {
        assert!(matches!(err, ExecError::UnknownColumn(_)), "got {err:?}");
    }
    // Adding incompatible values errors cleanly.
    let bad_add = Pt::proj(
        vec![("v".into(), Expr::path("x", &["name"]).add(Expr::int(1)))],
        Pt::entity(e, "x"),
    );
    let mut ex3 = Executor::new(&mut m.db, &idx, &methods);
    assert!(matches!(ex3.run(&bad_add), Err(ExecError::BadValue(_))));
}

#[test]
fn integer_add_overflow_is_reported_not_wrapped() {
    let mut m = small_music();
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let idx = IndexSet::new();
    let methods = MethodRegistry::new();
    let overflow = Pt::proj(
        vec![(
            "v".into(),
            Expr::path("x", &["birth_year"]).add(Expr::int(i64::MAX)),
        )],
        Pt::entity(e, "x"),
    );
    let mut ex = Executor::new(&mut m.db, &idx, &methods);
    let err = ex.run(&overflow).unwrap_err();
    match err {
        ExecError::BadValue(msg) => {
            assert!(msg.contains("overflow"), "got {msg:?}")
        }
        other => panic!("expected BadValue(overflow), got {other:?}"),
    }
    // The same addition stays exact below the boundary.
    let ok = Pt::proj(
        vec![(
            "v".into(),
            Expr::path("x", &["birth_year"]).add(Expr::int(1)),
        )],
        Pt::entity(e, "x"),
    );
    let mut ex2 = Executor::new(&mut m.db, &idx, &methods);
    assert!(ex2.run(&ok).is_ok());
}

#[test]
fn non_boolean_predicate_is_a_bad_value_not_false() {
    let mut m = small_music();
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let idx = IndexSet::new();
    let methods = MethodRegistry::new();
    // A selection predicate evaluating to an Int must error, not be
    // silently treated as false (which would drop every row).
    let bad = Pt::sel(Expr::path("x", &["birth_year"]), Pt::entity(e, "x"));
    let mut ex = Executor::new(&mut m.db, &idx, &methods);
    let err = ex.run(&bad).unwrap_err();
    match err {
        ExecError::BadValue(msg) => {
            assert!(msg.contains("non-boolean"), "got {msg:?}")
        }
        // The static verifier may reject the plan first in debug builds.
        ExecError::PlanLint(_) => {}
        other => panic!("expected BadValue(non-boolean), got {other:?}"),
    }
    // Null predicates keep their three-valued reading: no match, no
    // error.
    let null_pred = Pt::sel(Expr::Lit(oorq_query::Literal::Null), Pt::entity(e, "x"));
    let mut ex2 = Executor::new(&mut m.db, &idx, &methods);
    let out = ex2.run(&null_pred);
    match out {
        Ok(rows) => assert_eq!(rows.len(), 0, "NULL predicate selects nothing"),
        Err(ExecError::PlanLint(_)) => {}
        Err(other) => panic!("expected empty result, got {other:?}"),
    }
}

#[test]
fn union_mismatch_is_reported() {
    let mut m = small_music();
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let idx = IndexSet::new();
    let methods = MethodRegistry::new();
    let l = Pt::proj(vec![("a".into(), Expr::var("x"))], Pt::entity(e, "x"));
    let r = Pt::proj(vec![("b".into(), Expr::var("x"))], Pt::entity(e, "x"));
    let mut ex = Executor::new(&mut m.db, &idx, &methods);
    let err = ex.run(&Pt::union(l, r)).unwrap_err();
    if cfg!(debug_assertions) {
        assert!(matches!(err, ExecError::PlanLint(_)), "got {err:?}");
    } else {
        assert!(matches!(err, ExecError::UnionMismatch), "got {err:?}");
    }
}

#[test]
fn fixpoint_over_empty_base_terminates_empty() {
    let mut m = small_music();
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let idx = IndexSet::new();
    let methods = MethodRegistry::new();
    let base = Pt::proj(
        vec![
            ("master".into(), Expr::path("x", &["master"])),
            ("disciple".into(), Expr::var("x")),
            ("gen".into(), Expr::int(1)),
        ],
        Pt::sel(
            Expr::path("x", &["name"]).eq(Expr::text("Nobody")),
            Pt::entity(e, "x"),
        ),
    );
    let rec = Pt::proj(
        vec![
            ("master".into(), Expr::var("i.master")),
            ("disciple".into(), Expr::var("x")),
            ("gen".into(), Expr::var("i.gen").add(Expr::int(1))),
        ],
        Pt::ej(
            Expr::var("i.disciple").eq(Expr::path("x", &["master"])),
            Pt::temp("Empty", "i"),
            Pt::entity(e, "x"),
        ),
    );
    let plan = Pt::fix("Empty", Pt::union(base, rec));
    let mut ex = Executor::new(&mut m.db, &idx, &methods);
    let out = ex.run(&plan).unwrap();
    assert!(out.is_empty());
    // Counter-based: with an empty base the delta starts empty, so the
    // recursive side must never be opened — zero redundant delta scans.
    let ops = ex.report().ops;
    let delta_scan = ops
        .iter()
        .find(|o| o.label == "scan temp Empty")
        .expect("rec-side delta scan operator");
    assert_eq!(delta_scan.opens, 0, "empty base must not scan the delta");
    assert_eq!(delta_scan.rows_out, 0);
}

#[test]
fn single_iteration_fixpoint_scans_delta_once() {
    // Chains of length 2: the base emits one (master, disciple) pair per
    // chain, and no composer has a chain tail as master, so the first
    // semi-naive iteration derives nothing new and the loop must stop.
    let mut m = MusicDb::generate(
        Arc::new(music_catalog()),
        MusicConfig {
            chains: 3,
            chain_len: 2,
            ..Default::default()
        },
    );
    let idx = IndexSet::new();
    let methods = MethodRegistry::new();
    let plan = influencer_fix(&m);
    let mut ex = Executor::new(&mut m.db, &idx, &methods);
    let out = ex.run(&plan).unwrap();
    assert_eq!(out.len(), 3, "one pair per chain");
    // Counter-based: exactly one delta scan (the iteration that proves
    // the fixpoint), not a redundant second pass over an empty delta.
    let ops = ex.report().ops;
    let delta_scan = ops
        .iter()
        .find(|o| o.label == "scan temp Influencer")
        .expect("rec-side delta scan operator");
    assert_eq!(
        delta_scan.opens, 1,
        "single-iteration fixpoint must scan the delta exactly once"
    );
}

#[test]
fn nl_join_materialized_inner_charges_page_store_io() {
    // A nested loop whose inner is itself a join cannot rescan it; the
    // executor materializes the inner once into a page-store temporary.
    // Counter-based pin: the materialization's page writes and the
    // per-outer-row rescan fetches must land on the `NlJoin`'s own
    // operator counters (and the run totals), not vanish into an
    // unaccounted side buffer.
    let mut m = MusicDb::generate(
        Arc::new(music_catalog()),
        MusicConfig {
            chains: 6,
            chain_len: 6,
            ..Default::default()
        },
    );
    let e = m.db.physical().entities_of_class(m.composer)[0];
    let idx = IndexSet::new();
    let methods = MethodRegistry::new();
    // The inner cross join materializes |Composer|² rows — several
    // pages, so a one-page budget genuinely has to spill it.
    let pred_inner = Expr::int(1).eq(Expr::int(1));
    let plan = Pt::ej(
        Expr::path("a", &["master"]).eq(Expr::path("b", &["master"])),
        Pt::entity(e, "a"),
        Pt::ej(pred_inner, Pt::entity(e, "b"), Pt::entity(e, "c")),
    );

    let mut ex = Executor::new(&mut m.db, &idx, &methods);
    let out = ex.run(&plan).unwrap();
    let report = ex.report();
    let nl = report
        .ops
        .iter()
        .find(|o| o.label.starts_with("EJ") && o.page_writes > 0)
        .expect("materializing NlJoin charged page writes");
    assert!(
        nl.page_reads + nl.page_hits > 0,
        "rescans of the materialized inner must be fetched (and accounted)"
    );
    assert!(report.io.page_writes >= nl.page_writes);

    // Under a one-page breaker budget the inner spills and re-fetches,
    // but the answer is byte-identical.
    m.db.cold_cache();
    let mut ex2 = Executor::new(&mut m.db, &idx, &methods).with_config(ExecConfig {
        memory_budget_pages: 1,
        ..ExecConfig::default()
    });
    let out2 = ex2.run(&plan).unwrap();
    assert_eq!(out.rows, out2.rows, "budget must not change the answer");
    let io2 = ex2.report().io;
    assert!(
        io2.page_reads > report.io.page_reads,
        "a 1-page budget must force re-reads ({} vs {})",
        io2.page_reads,
        report.io.page_reads
    );
}
