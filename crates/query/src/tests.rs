//! Query-graph tests over the paper's running example.

use oorq_schema::ResolvedType;

use crate::paper::*;
use crate::*;

#[test]
fn fig2_query_validates_and_displays() {
    let cat = music_catalog();
    let q = fig2_query(&cat);
    q.validate(&cat).unwrap();
    let s = q.display(&cat).to_string();
    assert!(s.contains("Answer <- SPJ({(Composer,"), "got: {s}");
    assert!(s.contains("n=\"Bach\" and i1=\"harpsichord\" and i2=\"flute\""));
    // The paper's tree-label denotation for tr1.
    let arc_label = match &q.nodes[0].1 {
        GraphTerm::Spj(s) => s.inputs[0].label.to_string(),
        _ => unreachable!(),
    };
    assert_eq!(
        arc_label,
        "{(name, {}, n), (works, {(NIL, {(title, {}, t), (instruments, \
         {(NIL, {(name, {}, i1)}, NIL), (NIL, {(name, {}, i2)}, NIL)}, NIL)}, NIL)}, NIL)}"
    );
}

#[test]
fn fig3_query_with_view_expands_and_validates() {
    let cat = music_catalog();
    let mut q = fig3_query(&cat);
    let reg = influencer_view(&cat);
    reg.expand(&mut q, &cat).unwrap();
    // P3 + P1 + P2
    assert_eq!(q.nodes.len(), 3);
    q.validate(&cat).unwrap();
    // The Influencer name is produced by two predicate nodes (P1, P2).
    let influencer = cat.relation_by_name("Influencer").unwrap();
    assert_eq!(q.producers(&NameRef::Relation(influencer)).len(), 2);
}

#[test]
fn expansion_is_idempotent_and_missing_views_error() {
    let cat = music_catalog();
    let mut q = fig3_query(&cat);
    let reg = influencer_view(&cat);
    reg.expand(&mut q, &cat).unwrap();
    let n = q.nodes.len();
    reg.expand(&mut q, &cat).unwrap();
    assert_eq!(q.nodes.len(), n, "second expansion adds nothing");

    let mut q2 = fig3_query(&cat);
    let err = ViewRegistry::new().expand(&mut q2, &cat).unwrap_err();
    assert_eq!(err, QueryError::UnknownView("Influencer".into()));
}

#[test]
fn normalization_grafts_paths_and_rewrites_predicates() {
    let cat = music_catalog();
    let mut q = fig3_query(&cat);
    influencer_view(&cat).expand(&mut q, &cat).unwrap();
    q.normalize(&cat).unwrap();
    q.validate(&cat).unwrap();
    // After normalization no path expressions remain in predicates.
    for (_, term) in &q.nodes {
        for spj in term.spjs() {
            assert!(
                spj.pred.paths().is_empty(),
                "pred still has paths: {}",
                spj.pred
            );
            for (_, e) in &spj.out_proj {
                assert!(e.paths().is_empty() || matches!(e, Expr::Var(_)));
            }
        }
    }
    // P3's arc label now spans master.works.instruments.name, gen and
    // disciple.name — overlapping paths share the arc.
    let p3 = q.nodes[0].1.spjs()[0];
    let label = p3.inputs[0].label.to_string();
    assert!(label.contains("master"), "label: {label}");
    assert!(label.contains("works"));
    assert!(label.contains("instruments"));
    assert!(label.contains("gen"));
    assert!(label.contains("disciple"));
}

#[test]
fn normalization_shares_identical_paths() {
    let cat = music_catalog();
    let composer = cat.class_by_name("Composer").unwrap();
    let mut q = QueryGraph::new(NameRef::Derived("A".into()));
    q.add_spj(
        NameRef::Derived("A".into()),
        SpjNode {
            inputs: vec![QArc::new(NameRef::Class(composer), "x")],
            // name appears twice: both occurrences must share one variable.
            pred: Expr::path("x", &["name"])
                .ne(Expr::text("Bach"))
                .and(Expr::path("x", &["name"]).ne(Expr::text("Handel"))),
            out_proj: vec![("n".into(), Expr::path("x", &["name"]))],
        },
    );
    q.normalize(&cat).unwrap();
    let spj = q.nodes[0].1.spjs()[0];
    let vars = spj.label_vars();
    assert_eq!(vars.len(), 1, "one shared variable, got {vars:?}");
}

#[test]
fn binding_env_types_variables() {
    let cat = music_catalog();
    let mut q = fig3_query(&cat);
    influencer_view(&cat).expand(&mut q, &cat).unwrap();
    q.normalize(&cat).unwrap();
    let p3 = q.nodes[0].1.spjs()[0];
    let env = q.binding_env(&cat, p3).unwrap();
    // The arc root variable i has the Influencer tuple type.
    match env.get("i").unwrap() {
        ResolvedType::Tuple(fields) => assert_eq!(fields.len(), 3),
        other => panic!("expected tuple, got {other:?}"),
    }
}

#[test]
fn derived_name_type_inferred_from_projection() {
    let cat = music_catalog();
    let mut q = fig3_query(&cat);
    influencer_view(&cat).expand(&mut q, &cat).unwrap();
    q.normalize(&cat).unwrap();
    let ty = q.type_of(&cat, &NameRef::Derived("Answer".into())).unwrap();
    match ty {
        ResolvedType::Tuple(fields) => {
            assert_eq!(fields.len(), 1);
            assert_eq!(fields[0].0, "name");
            assert!(matches!(fields[0].1, ResolvedType::Atomic(_)));
        }
        other => panic!("expected tuple, got {other:?}"),
    }
}

#[test]
fn unbound_variable_rejected() {
    let cat = music_catalog();
    let composer = cat.class_by_name("Composer").unwrap();
    let mut q = QueryGraph::new(NameRef::Derived("A".into()));
    q.add_spj(
        NameRef::Derived("A".into()),
        SpjNode {
            inputs: vec![QArc::new(NameRef::Class(composer), "x")],
            pred: Expr::var("zz").eq(Expr::int(1)),
            out_proj: vec![("a".into(), Expr::var("x"))],
        },
    );
    assert_eq!(
        q.validate(&cat).unwrap_err(),
        QueryError::UnboundVariable("zz".into())
    );
}

#[test]
fn duplicate_variable_rejected() {
    let cat = music_catalog();
    let composer = cat.class_by_name("Composer").unwrap();
    let mut q = QueryGraph::new(NameRef::Derived("A".into()));
    q.add_spj(
        NameRef::Derived("A".into()),
        SpjNode {
            inputs: vec![
                QArc::new(NameRef::Class(composer), "x"),
                QArc::new(NameRef::Class(composer), "x"),
            ],
            pred: Expr::True,
            out_proj: vec![("a".into(), Expr::var("x"))],
        },
    );
    assert_eq!(
        q.validate(&cat).unwrap_err(),
        QueryError::DuplicateVariable("x".into())
    );
}

#[test]
fn bad_label_step_rejected() {
    let cat = music_catalog();
    let composer = cat.class_by_name("Composer").unwrap();
    let mut q = QueryGraph::new(NameRef::Derived("A".into()));
    q.add_spj(
        NameRef::Derived("A".into()),
        SpjNode {
            inputs: vec![QArc {
                name: NameRef::Class(composer),
                var: Some("x".into()),
                // `name` is text: an element step cannot apply.
                label: TreeLabel::leaf().attr_tree("name", TreeLabel::leaf().elem_var("bad")),
            }],
            pred: Expr::True,
            out_proj: vec![("a".into(), Expr::var("x"))],
        },
    );
    assert!(matches!(
        q.validate(&cat).unwrap_err(),
        QueryError::BadLabelStep { .. }
    ));
}

#[test]
fn unknown_attribute_in_path_rejected() {
    let cat = music_catalog();
    let composer = cat.class_by_name("Composer").unwrap();
    let mut q = QueryGraph::new(NameRef::Derived("A".into()));
    q.add_spj(
        NameRef::Derived("A".into()),
        SpjNode {
            inputs: vec![QArc::new(NameRef::Class(composer), "x")],
            pred: Expr::path("x", &["nonexistent"]).eq(Expr::int(1)),
            out_proj: vec![("a".into(), Expr::var("x"))],
        },
    );
    assert!(matches!(
        q.normalize(&cat).unwrap_err(),
        QueryError::UnknownAttribute { .. }
    ));
}

#[test]
fn answer_must_be_produced() {
    let cat = music_catalog();
    let q = QueryGraph::new(NameRef::Derived("Answer".into()));
    assert!(matches!(
        q.validate(&cat).unwrap_err(),
        QueryError::NoAnswer(_)
    ));
}

#[test]
fn fig3_denotation_mentions_fixpoint_inputs() {
    let cat = music_catalog();
    let mut q = fig3_query(&cat);
    influencer_view(&cat).expand(&mut q, &cat).unwrap();
    let s = q.display(&cat).to_string();
    assert!(s.contains("Influencer <- SPJ"), "got: {s}");
    assert!(s.contains("gen: i.gen+1"), "got: {s}");
}

#[test]
fn pushjoin_query_validates() {
    let cat = music_catalog();
    let mut q = sec45_pushjoin_query(&cat);
    influencer_view(&cat).expand(&mut q, &cat).unwrap();
    q.normalize(&cat).unwrap();
    q.validate(&cat).unwrap();
}
