//! Query-graph validation errors.

use std::fmt;

/// Errors raised while building, validating or normalizing query graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A name node references an unknown class/relation.
    UnknownName(String),
    /// A class does not have the requested attribute.
    UnknownAttribute {
        /// Class name.
        class: String,
        /// Attribute name.
        attr: String,
    },
    /// A tuple type does not have the requested field.
    UnknownField(String),
    /// A tree-label step does not match the labelled type.
    BadLabelStep {
        /// The step (attribute name or `NIL`).
        step: String,
        /// The type it was applied to.
        ty: String,
    },
    /// An expression references a variable bound by no arc.
    UnboundVariable(String),
    /// Two arcs of one predicate node bind the same variable.
    DuplicateVariable(String),
    /// A derived name is consumed but never produced.
    UndefinedDerived(String),
    /// A derived name's type depends on itself (recursion through
    /// derived names; recursive definitions must go through a declared
    /// view relation, which fixes the type).
    CyclicTyping(String),
    /// The query graph has no predicate node producing the answer.
    NoAnswer(String),
    /// A view was referenced but not registered.
    UnknownView(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownName(n) => write!(f, "unknown name node `{n}`"),
            QueryError::UnknownAttribute { class, attr } => {
                write!(f, "class `{class}` has no attribute `{attr}`")
            }
            QueryError::UnknownField(n) => write!(f, "unknown tuple field `{n}`"),
            QueryError::BadLabelStep { step, ty } => {
                write!(f, "tree-label step `{step}` does not apply to type {ty}")
            }
            QueryError::UnboundVariable(v) => write!(f, "unbound variable `{v}`"),
            QueryError::DuplicateVariable(v) => write!(f, "variable `{v}` bound twice"),
            QueryError::UndefinedDerived(n) => {
                write!(f, "derived name `{n}` is consumed but never produced")
            }
            QueryError::CyclicTyping(n) => {
                write!(f, "the type of derived name `{n}` depends on itself")
            }
            QueryError::NoAnswer(n) => write!(f, "no predicate node produces the answer `{n}`"),
            QueryError::UnknownView(v) => write!(f, "view `{v}` has no registered definition"),
        }
    }
}

impl std::error::Error for QueryError {}
