//! Query graphs (§2.2–2.3 of the paper).
//!
//! A query graph is a set `Q = {(Name ← p)}` where each `p` is a
//! predicate node `SPJ(In, pred, outproj)` — and, after the optimizer's
//! `rewrite` step, possibly a `Union` or `Fix` term. Incoming arcs carry
//! [`TreeLabel`]s binding variables to the needed sub-objects.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use oorq_schema::{AtomicType, Catalog, ClassId, RelationId, ResolvedType, ViewKind};

use crate::error::QueryError;
use crate::expr::{Expr, Literal};
use crate::label::TreeLabel;

/// A name node of the query graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NameRef {
    /// A class extension.
    Class(ClassId),
    /// A stored relation or a declared view (e.g. `Influencer`).
    Relation(RelationId),
    /// A derived name produced by a predicate node (e.g. `Answer`).
    Derived(String),
}

impl NameRef {
    /// Render with catalog names.
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> NameDisplay<'a> {
        NameDisplay {
            name: self,
            catalog,
        }
    }

    /// The row/object type this name denotes. Derived names are resolved
    /// by the owning [`QueryGraph`].
    pub fn base_type(&self, catalog: &Catalog) -> Option<ResolvedType> {
        match self {
            NameRef::Class(c) => Some(ResolvedType::Object(*c)),
            NameRef::Relation(r) => Some(ResolvedType::Tuple(catalog.relation(*r).fields.clone())),
            NameRef::Derived(_) => None,
        }
    }
}

/// Helper rendering a [`NameRef`] with catalog names.
pub struct NameDisplay<'a> {
    name: &'a NameRef,
    catalog: &'a Catalog,
}

impl fmt::Display for NameDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name {
            NameRef::Class(c) => write!(f, "{}", self.catalog.class(*c).name),
            NameRef::Relation(r) => write!(f, "{}", self.catalog.relation(*r).name),
            NameRef::Derived(n) => write!(f, "{n}"),
        }
    }
}

/// An incoming arc of a predicate node: `(Name, tree)` plus a root
/// variable denoting the input instance itself.
#[derive(Debug, Clone, PartialEq)]
pub struct QArc {
    /// The name node the arc originates at.
    pub name: NameRef,
    /// Variable bound to the input instance (e.g. `x in Composer`).
    pub var: Option<String>,
    /// The tree label.
    pub label: TreeLabel,
}

impl QArc {
    /// Arc with a root variable and an (initially) leaf label.
    pub fn new(name: NameRef, var: impl Into<String>) -> Self {
        QArc {
            name,
            var: Some(var.into()),
            label: TreeLabel::leaf(),
        }
    }

    /// Attach a tree label.
    pub fn with_label(mut self, label: TreeLabel) -> Self {
        self.label = label;
        self
    }
}

/// A predicate node `SPJ(In, pred, outproj)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpjNode {
    /// Incoming arcs.
    pub inputs: Vec<QArc>,
    /// The Boolean predicate.
    pub pred: Expr,
    /// The output projection: a tuple of named expressions (the paper's
    /// outgoing-arc tree label, which references input variables).
    pub out_proj: Vec<(String, Expr)>,
}

impl SpjNode {
    /// All variables bound in the tree labels of the incoming arcs
    /// (excluding root variables).
    pub fn label_vars(&self) -> Vec<String> {
        self.inputs.iter().flat_map(|a| a.label.vars()).collect()
    }

    /// All root variables of the incoming arcs.
    pub fn root_vars(&self) -> Vec<String> {
        self.inputs.iter().filter_map(|a| a.var.clone()).collect()
    }
}

/// A term producing a name node. Original query graphs contain only
/// `Spj`; the optimizer's `rewrite` step introduces `Union` and `Fix`.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphTerm {
    /// A select-project-join.
    Spj(SpjNode),
    /// Union of two terms (same output type).
    Union(Box<GraphTerm>, Box<GraphTerm>),
    /// Fixpoint: `Fix(Name, p)` computes the least fixpoint of the
    /// equation `Name = p(Name)`.
    Fix(NameRef, Box<GraphTerm>),
}

impl GraphTerm {
    /// All SPJ nodes in the term (in evaluation order).
    pub fn spjs(&self) -> Vec<&SpjNode> {
        let mut out = Vec::new();
        self.collect_spjs(&mut out);
        out
    }

    fn collect_spjs<'a>(&'a self, out: &mut Vec<&'a SpjNode>) {
        match self {
            GraphTerm::Spj(s) => out.push(s),
            GraphTerm::Union(l, r) => {
                l.collect_spjs(out);
                r.collect_spjs(out);
            }
            GraphTerm::Fix(_, p) => p.collect_spjs(out),
        }
    }

    /// Mutable variant of [`GraphTerm::spjs`].
    pub fn spjs_mut(&mut self) -> Vec<&mut SpjNode> {
        let mut out = Vec::new();
        fn walk<'a>(t: &'a mut GraphTerm, out: &mut Vec<&'a mut SpjNode>) {
            match t {
                GraphTerm::Spj(s) => out.push(s),
                GraphTerm::Union(l, r) => {
                    walk(l, out);
                    walk(r, out);
                }
                GraphTerm::Fix(_, p) => walk(p, out),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Names consumed by the term's SPJ inputs.
    pub fn consumed_names(&self) -> Vec<&NameRef> {
        self.spjs()
            .iter()
            .flat_map(|s| s.inputs.iter().map(|a| &a.name))
            .collect()
    }

    /// The union alternatives of the term, looking through a fixpoint
    /// wrapper: `Union(a, b)` flattens to the alternatives of both
    /// sides, `Fix(_, p)` to the alternatives of `p`. Used to classify
    /// recursion (each alternative is one "rule" producing the name).
    pub fn alternatives(&self) -> Vec<&GraphTerm> {
        match self {
            GraphTerm::Union(l, r) => {
                let mut out = l.alternatives();
                out.extend(r.alternatives());
                out
            }
            GraphTerm::Fix(_, p) => p.alternatives(),
            t => vec![t],
        }
    }

    /// Render with catalog names.
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> TermDisplay<'a> {
        TermDisplay {
            term: self,
            catalog,
        }
    }
}

/// Helper rendering a [`GraphTerm`] in the paper's notation.
pub struct TermDisplay<'a> {
    term: &'a GraphTerm,
    catalog: &'a Catalog,
}

impl fmt::Display for TermDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.term {
            GraphTerm::Spj(s) => {
                write!(f, "SPJ({{")?;
                for (i, arc) in s.inputs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "({}, {})", arc.name.display(self.catalog), arc.label)?;
                }
                write!(f, "}}, {}, [", s.pred)?;
                for (i, (n, e)) in s.out_proj.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {e}")?;
                }
                write!(f, "])")
            }
            GraphTerm::Union(l, r) => write!(
                f,
                "Union({}, {})",
                l.display(self.catalog),
                r.display(self.catalog)
            ),
            GraphTerm::Fix(n, p) => write!(
                f,
                "Fix({}, {})",
                n.display(self.catalog),
                p.display(self.catalog)
            ),
        }
    }
}

/// A query graph: `Q = {(Name ← p)}` with a distinguished answer name.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryGraph {
    /// The `(Name ← term)` pairs.
    pub nodes: Vec<(NameRef, GraphTerm)>,
    /// The distinguished answer name.
    pub answer: NameRef,
}

impl QueryGraph {
    /// New query graph with the given answer name.
    pub fn new(answer: NameRef) -> Self {
        QueryGraph {
            nodes: Vec::new(),
            answer,
        }
    }

    /// Add `(name ← Spj(node))`.
    pub fn add_spj(&mut self, name: NameRef, node: SpjNode) -> &mut Self {
        self.nodes.push((name, GraphTerm::Spj(node)));
        self
    }

    /// The terms producing a name.
    pub fn producers(&self, name: &NameRef) -> Vec<&GraphTerm> {
        self.nodes
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, t)| t)
            .collect()
    }

    /// The row type of a name node: base types for classes/relations, the
    /// inferred projection type for derived names.
    pub fn type_of(&self, catalog: &Catalog, name: &NameRef) -> Result<ResolvedType, QueryError> {
        self.type_of_in(catalog, name, &mut Vec::new())
    }

    /// [`QueryGraph::type_of`] with a stack of the derived names whose
    /// types are currently being inferred: recursion through derived
    /// names is a typing cycle (only declared view relations may be
    /// recursive — their declaration fixes the type).
    fn type_of_in(
        &self,
        catalog: &Catalog,
        name: &NameRef,
        visiting: &mut Vec<NameRef>,
    ) -> Result<ResolvedType, QueryError> {
        if let Some(t) = name.base_type(catalog) {
            return Ok(t);
        }
        let NameRef::Derived(dname) = name else {
            unreachable!("base covered")
        };
        if visiting.contains(name) {
            return Err(QueryError::CyclicTyping(dname.clone()));
        }
        let term = self
            .producers(name)
            .into_iter()
            .next()
            .ok_or_else(|| QueryError::UndefinedDerived(dname.clone()))?;
        let spj = term
            .spjs()
            .into_iter()
            .next()
            .ok_or_else(|| QueryError::UndefinedDerived(dname.clone()))?;
        visiting.push(name.clone());
        let out = self.spj_out_type_in(catalog, spj, visiting);
        visiting.pop();
        out
    }

    /// The output tuple type of an SPJ node.
    pub fn spj_out_type(
        &self,
        catalog: &Catalog,
        spj: &SpjNode,
    ) -> Result<ResolvedType, QueryError> {
        self.spj_out_type_in(catalog, spj, &mut Vec::new())
    }

    fn spj_out_type_in(
        &self,
        catalog: &Catalog,
        spj: &SpjNode,
        visiting: &mut Vec<NameRef>,
    ) -> Result<ResolvedType, QueryError> {
        let env = self.binding_env_in(catalog, spj, visiting)?;
        let fields = spj
            .out_proj
            .iter()
            .map(|(n, e)| Ok((n.clone(), expr_type(catalog, e, &env)?)))
            .collect::<Result<Vec<_>, QueryError>>()?;
        Ok(ResolvedType::Tuple(fields))
    }

    /// The variable typing environment of an SPJ node: root variables plus
    /// every variable bound in its tree labels.
    pub fn binding_env(
        &self,
        catalog: &Catalog,
        spj: &SpjNode,
    ) -> Result<HashMap<String, ResolvedType>, QueryError> {
        self.binding_env_in(catalog, spj, &mut Vec::new())
    }

    fn binding_env_in(
        &self,
        catalog: &Catalog,
        spj: &SpjNode,
        visiting: &mut Vec<NameRef>,
    ) -> Result<HashMap<String, ResolvedType>, QueryError> {
        let mut env = HashMap::new();
        for arc in &spj.inputs {
            let ty = self.type_of_in(catalog, &arc.name, visiting)?;
            if let Some(v) = &arc.var {
                if env.insert(v.clone(), ty.clone()).is_some() {
                    return Err(QueryError::DuplicateVariable(v.clone()));
                }
            }
            collect_label_types(catalog, &arc.label, &ty, &mut env)?;
        }
        Ok(env)
    }

    /// Validate the whole graph: labels match types, variables are bound
    /// and unique per node, derived names are produced, the answer exists.
    pub fn validate(&self, catalog: &Catalog) -> Result<(), QueryError> {
        if self.producers(&self.answer).is_empty() {
            let name = format!("{}", self.answer.display(catalog));
            return Err(QueryError::NoAnswer(name));
        }
        for (_, term) in &self.nodes {
            for spj in term.spjs() {
                let env = self.binding_env(catalog, spj)?;
                for arc in &spj.inputs {
                    let ty = self.type_of(catalog, &arc.name)?;
                    arc.label.validate(catalog, &ty)?;
                    // Derived/relation inputs must be producible.
                    if let NameRef::Derived(d) = &arc.name {
                        if self.producers(&arc.name).is_empty() {
                            return Err(QueryError::UndefinedDerived(d.clone()));
                        }
                    }
                }
                for v in spj.pred.vars() {
                    if !env.contains_key(&v) {
                        return Err(QueryError::UnboundVariable(v));
                    }
                }
                for (_, e) in &spj.out_proj {
                    for v in e.vars() {
                        if !env.contains_key(&v) {
                            return Err(QueryError::UnboundVariable(v));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Normalize the graph: every path expression in predicates and
    /// output projections is grafted onto the tree label of its base
    /// arc (sharing attribute prefixes — the factorization of
    /// overlapping paths the paper's §5 highlights) and replaced by the
    /// variable bound at its end. After normalization, predicates
    /// reference only variables.
    pub fn normalize(&mut self, catalog: &Catalog) -> Result<(), QueryError> {
        let snapshot = self.clone();
        let mut counter = 0usize;
        for (_, term) in &mut self.nodes {
            for spj in term.spjs_mut() {
                normalize_spj(&snapshot, catalog, spj, &mut counter)?;
            }
        }
        Ok(())
    }

    /// Paper-style denotation of the whole graph.
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> GraphDisplay<'a> {
        GraphDisplay {
            graph: self,
            catalog,
        }
    }
}

/// Helper rendering a [`QueryGraph`] in the paper's notation.
pub struct GraphDisplay<'a> {
    graph: &'a QueryGraph,
    catalog: &'a Catalog,
}

impl fmt::Display for GraphDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Q = {{")?;
        for (name, term) in &self.graph.nodes {
            writeln!(
                f,
                "  ({} <- {})",
                name.display(self.catalog),
                term.display(self.catalog)
            )?;
        }
        write!(f, "}}")
    }
}

fn collect_label_types(
    catalog: &Catalog,
    label: &TreeLabel,
    ty: &ResolvedType,
    env: &mut HashMap<String, ResolvedType>,
) -> Result<(), QueryError> {
    for c in &label.children {
        let child_ty = match (&c.attr, ty) {
            (Some(attr), ResolvedType::Object(class)) => catalog
                .attr(*class, attr)
                .map(|(_, a)| a.ty.clone())
                .ok_or_else(|| QueryError::UnknownAttribute {
                    class: catalog.class(*class).name.clone(),
                    attr: attr.clone(),
                })?,
            (Some(attr), ResolvedType::Tuple(fields)) => fields
                .iter()
                .find(|(n, _)| n == attr)
                .map(|(_, t)| t.clone())
                .ok_or_else(|| QueryError::UnknownField(attr.clone()))?,
            (None, ResolvedType::Set(e)) | (None, ResolvedType::List(e)) => (**e).clone(),
            (step, other) => {
                return Err(QueryError::BadLabelStep {
                    step: step.clone().unwrap_or_else(|| "NIL".into()),
                    ty: format!("{other:?}"),
                })
            }
        };
        if let Some(v) = &c.var {
            if env.insert(v.clone(), child_ty.clone()).is_some() {
                return Err(QueryError::DuplicateVariable(v.clone()));
            }
        }
        collect_label_types(catalog, &c.tree, &child_ty, env)?;
    }
    Ok(())
}

/// Infer the type of an expression under a variable environment.
/// Collection constructors are stripped along paths (a path through a
/// collection denotes its members, one per embedding).
pub fn expr_type(
    catalog: &Catalog,
    expr: &Expr,
    env: &HashMap<String, ResolvedType>,
) -> Result<ResolvedType, QueryError> {
    match expr {
        Expr::True => Ok(ResolvedType::Atomic(AtomicType::Bool)),
        Expr::Lit(l) => Ok(ResolvedType::Atomic(match l {
            Literal::Int(_) => AtomicType::Int,
            Literal::Float(_) => AtomicType::Float,
            Literal::Text(_) => AtomicType::Text,
            Literal::Bool(_) => AtomicType::Bool,
            Literal::Null => AtomicType::Bool, // typeless; placeholder
        })),
        Expr::Var(v) => {
            let t = env
                .get(v)
                .ok_or_else(|| QueryError::UnboundVariable(v.clone()))?;
            Ok(strip_collections(t.clone()))
        }
        Expr::Path { base, steps } => {
            let mut ty = env
                .get(base)
                .cloned()
                .ok_or_else(|| QueryError::UnboundVariable(base.clone()))?;
            for step in steps {
                ty = strip_collections(ty);
                ty = match &ty {
                    ResolvedType::Object(class) => catalog
                        .attr(*class, step)
                        .map(|(_, a)| a.ty.clone())
                        .ok_or_else(|| QueryError::UnknownAttribute {
                            class: catalog.class(*class).name.clone(),
                            attr: step.clone(),
                        })?,
                    ResolvedType::Tuple(fields) => fields
                        .iter()
                        .find(|(n, _)| n == step)
                        .map(|(_, t)| t.clone())
                        .ok_or_else(|| QueryError::UnknownField(step.clone()))?,
                    other => {
                        return Err(QueryError::BadLabelStep {
                            step: step.clone(),
                            ty: format!("{other:?}"),
                        })
                    }
                };
            }
            Ok(strip_collections(ty))
        }
        Expr::Cmp { .. } | Expr::And(..) | Expr::Or(..) | Expr::Not(_) => {
            Ok(ResolvedType::Atomic(AtomicType::Bool))
        }
        Expr::Add(l, r) => {
            let lt = expr_type(catalog, l, env)?;
            let _ = expr_type(catalog, r, env)?;
            Ok(lt)
        }
    }
}

fn strip_collections(ty: ResolvedType) -> ResolvedType {
    match ty {
        ResolvedType::Set(e) | ResolvedType::List(e) => strip_collections(*e),
        other => other,
    }
}

/// Graft every path of `spj`'s predicate and projection onto the arcs'
/// tree labels and rewrite the expressions to reference the bound
/// variables.
fn normalize_spj(
    graph: &QueryGraph,
    catalog: &Catalog,
    spj: &mut SpjNode,
    counter: &mut usize,
) -> Result<(), QueryError> {
    // Root variables and pre-bound label variables.
    let pre_bound: BTreeSet<String> = {
        let mut s = BTreeSet::new();
        for arc in &spj.inputs {
            if let Some(v) = &arc.var {
                s.insert(v.clone());
            }
            for v in arc.label.vars() {
                s.insert(v);
            }
        }
        s
    };
    // Memoize grafted paths so identical occurrences share one variable.
    let mut grafted: HashMap<(String, Vec<String>), String> = HashMap::new();
    // Collect paths first (immutable walk), then graft.
    let mut all_paths: Vec<(String, Vec<String>)> = Vec::new();
    for e in std::iter::once(&spj.pred).chain(spj.out_proj.iter().map(|(_, e)| e)) {
        for (base, steps) in e.paths() {
            if steps.is_empty() {
                continue;
            }
            all_paths.push((base.to_string(), steps.to_vec()));
        }
    }
    for (base, steps) in all_paths {
        if grafted.contains_key(&(base.clone(), steps.clone())) {
            continue;
        }
        if !pre_bound.contains(&base) {
            return Err(QueryError::UnboundVariable(base.clone()));
        }
        let arc = spj
            .inputs
            .iter_mut()
            .find(|a| a.var.as_deref() == Some(base.as_str()))
            .ok_or_else(|| QueryError::UnboundVariable(base.clone()))?;
        let ty = graph.type_of(catalog, &arc.name)?;
        let mut fresh = || {
            *counter += 1;
            format!("_v{counter}")
        };
        let var = arc.label.graft_path(catalog, &ty, &steps, &mut fresh)?;
        grafted.insert((base, steps), var);
    }
    // Rewrite expressions.
    let rewrite = |e: &Expr| -> Expr {
        e.map_leaves(&mut |leaf| match leaf {
            Expr::Path { base, steps } if !steps.is_empty() => grafted
                .get(&(base.clone(), steps.clone()))
                .map(|v| Expr::Var(v.clone())),
            _ => None,
        })
    };
    spj.pred = rewrite(&spj.pred);
    for (_, e) in &mut spj.out_proj {
        *e = rewrite(e);
    }
    Ok(())
}

/// Registry of view definitions: the predicate nodes whose output is the
/// view's relation name (e.g. the two select blocks of `Influencer`).
#[derive(Debug, Clone, Default)]
pub struct ViewRegistry {
    defs: HashMap<RelationId, Vec<SpjNode>>,
}

impl ViewRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register the defining predicate nodes of a view.
    pub fn define(&mut self, view: RelationId, nodes: Vec<SpjNode>) {
        self.defs.insert(view, nodes);
    }

    /// The definition of a view, if registered.
    pub fn definition(&self, view: RelationId) -> Option<&[SpjNode]> {
        self.defs.get(&view).map(Vec::as_slice)
    }

    /// Splice the definitions of every referenced view into the graph
    /// (transitively). Each view's nodes are added once, producing the
    /// view's relation name.
    pub fn expand(&self, graph: &mut QueryGraph, catalog: &Catalog) -> Result<(), QueryError> {
        let mut done: BTreeSet<RelationId> = BTreeSet::new();
        loop {
            let mut todo: Vec<RelationId> = Vec::new();
            for (_, term) in &graph.nodes {
                for name in term.consumed_names() {
                    if let NameRef::Relation(r) = name {
                        if catalog.relation(*r).kind == ViewKind::View
                            && !done.contains(r)
                            && graph.producers(&NameRef::Relation(*r)).is_empty()
                        {
                            todo.push(*r);
                        }
                    }
                }
            }
            todo.sort();
            todo.dedup();
            if todo.is_empty() {
                return Ok(());
            }
            for r in todo {
                let nodes = self
                    .defs
                    .get(&r)
                    .ok_or_else(|| QueryError::UnknownView(catalog.relation(r).name.clone()))?;
                for n in nodes {
                    graph
                        .nodes
                        .push((NameRef::Relation(r), GraphTerm::Spj(n.clone())));
                }
                done.insert(r);
            }
        }
    }
}
