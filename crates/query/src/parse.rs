//! A small textual query language producing query graphs.
//!
//! The surface syntax follows the paper's §2.3 examples (ESQL/O2Query
//! flavoured):
//!
//! ```text
//! view Influencer as
//!   select [master: x.master, disciple: x, gen: 1]
//!   from x in Composer
//!   where x.master <> null
//!   union
//!   select [master: i.master, disciple: x, gen: i.gen + 1]
//!   from i in Influencer, x in Composer
//!   where i.disciple = x.master;
//!
//! select [name: i.disciple.name]
//! from i in Influencer
//! where i.master.works.instruments.name = "harpsichord" and i.gen >= 6
//! ```
//!
//! `parse_program` returns the final query as a [`QueryGraph`] (its
//! answer is the derived name `Answer`) with every `view` definition
//! registered in a [`ViewRegistry`]; [`parse_query`] additionally
//! expands the referenced views into the graph.

use std::fmt;

use oorq_schema::{Catalog, ViewKind};

use crate::expr::{CmpOp, Expr, Literal};
use crate::graph::{NameRef, QArc, QueryGraph, SpjNode, ViewRegistry};

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// The result of parsing a program: the query graph (unexpanded) plus
/// the view definitions it may reference.
#[derive(Debug, Clone)]
pub struct ParsedProgram {
    /// The final query, answer name `Answer`.
    pub graph: QueryGraph,
    /// Registered view definitions.
    pub views: ViewRegistry,
}

/// Parse a program and expand its views into the graph.
pub fn parse_query(catalog: &Catalog, src: &str) -> Result<QueryGraph, ParseError> {
    let ParsedProgram { mut graph, views } = parse_program(catalog, src)?;
    views.expand(&mut graph, catalog).map_err(|e| ParseError {
        line: 0,
        col: 0,
        message: e.to_string(),
    })?;
    Ok(graph)
}

/// Parse a program without expanding views.
pub fn parse_program(catalog: &Catalog, src: &str) -> Result<ParsedProgram, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        catalog,
        tokens,
        pos: 0,
    };
    let mut views = ViewRegistry::new();
    loop {
        if p.peek_kw("view") {
            let (rel, defs) = p.view_def()?;
            views.define(rel, defs);
            continue;
        }
        break;
    }
    let selects = p.selects()?;
    p.expect_eof()?;
    let mut graph = QueryGraph::new(NameRef::Derived("Answer".into()));
    for spj in selects {
        graph.add_spj(NameRef::Derived("Answer".into()), spj);
    }
    Ok(ParsedProgram { graph, views })
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Sym(&'static str),
    Eof,
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = src.chars().peekable();
    let err = |line: usize, col: usize, m: String| ParseError {
        line,
        col,
        message: m,
    };
    while let Some(&c) = chars.peek() {
        let (tl, tc) = (line, col);
        let bump = |chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
                    line: &mut usize,
                    col: &mut usize| {
            let c = chars.next();
            if c == Some('\n') {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            c
        };
        match c {
            c if c.is_whitespace() => {
                bump(&mut chars, &mut line, &mut col);
            }
            '-' => {
                // Comment `-- ...` to end of line, or a negative number.
                bump(&mut chars, &mut line, &mut col);
                if chars.peek() == Some(&'-') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            break;
                        }
                    }
                    line += 1;
                    col = 1;
                } else if chars.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
                    let n = lex_number(&mut chars, &mut col, true, tl, tc)?;
                    out.push(Spanned {
                        tok: n,
                        line: tl,
                        col: tc,
                    });
                } else {
                    return Err(err(tl, tc, "unexpected `-`".into()));
                }
            }
            c if c.is_ascii_digit() => {
                let n = lex_number(&mut chars, &mut col, false, tl, tc)?;
                out.push(Spanned {
                    tok: n,
                    line: tl,
                    col: tc,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        s.push(c);
                        bump(&mut chars, &mut line, &mut col);
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Ident(s),
                    line: tl,
                    col: tc,
                });
            }
            '"' => {
                bump(&mut chars, &mut line, &mut col);
                let mut s = String::new();
                let mut closed = false;
                while let Some(c) = bump(&mut chars, &mut line, &mut col) {
                    if c == '"' {
                        closed = true;
                        break;
                    }
                    s.push(c);
                }
                if !closed {
                    return Err(err(tl, tc, "unterminated string".into()));
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    line: tl,
                    col: tc,
                });
            }
            '<' => {
                bump(&mut chars, &mut line, &mut col);
                let sym = match chars.peek() {
                    Some('>') => {
                        bump(&mut chars, &mut line, &mut col);
                        "<>"
                    }
                    Some('=') => {
                        bump(&mut chars, &mut line, &mut col);
                        "<="
                    }
                    _ => "<",
                };
                out.push(Spanned {
                    tok: Tok::Sym(sym),
                    line: tl,
                    col: tc,
                });
            }
            '>' => {
                bump(&mut chars, &mut line, &mut col);
                let sym = if chars.peek() == Some(&'=') {
                    bump(&mut chars, &mut line, &mut col);
                    ">="
                } else {
                    ">"
                };
                out.push(Spanned {
                    tok: Tok::Sym(sym),
                    line: tl,
                    col: tc,
                });
            }
            '=' | '[' | ']' | '(' | ')' | ',' | ':' | '.' | '+' | ';' => {
                bump(&mut chars, &mut line, &mut col);
                let sym: &'static str = match c {
                    '=' => "=",
                    '[' => "[",
                    ']' => "]",
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    ':' => ":",
                    '.' => ".",
                    '+' => "+",
                    ';' => ";",
                    _ => unreachable!(),
                };
                out.push(Spanned {
                    tok: Tok::Sym(sym),
                    line: tl,
                    col: tc,
                });
            }
            other => return Err(err(tl, tc, format!("unexpected character `{other}`"))),
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

fn lex_number(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    col: &mut usize,
    negative: bool,
    line: usize,
    start_col: usize,
) -> Result<Tok, ParseError> {
    let mut s = String::new();
    if negative {
        s.push('-');
    }
    let mut is_float = false;
    while let Some(&c) = chars.peek() {
        if c.is_ascii_digit() {
            s.push(c);
            chars.next();
            *col += 1;
        } else if c == '.' {
            // A digit must follow for this to be a float (else it is a
            // path dot — but numbers never start paths, so accept).
            let mut clone = chars.clone();
            clone.next();
            if clone.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
                is_float = true;
                s.push('.');
                chars.next();
                *col += 1;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    if is_float {
        s.parse::<f64>().map(Tok::Float).map_err(|_| ParseError {
            line,
            col: start_col,
            message: "bad float".into(),
        })
    } else {
        s.parse::<i64>().map(Tok::Int).map_err(|_| ParseError {
            line,
            col: start_col,
            message: "bad integer".into(),
        })
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    catalog: &'a Catalog,
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser<'_> {
    fn cur(&self) -> &Spanned {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn error(&self, m: impl Into<String>) -> ParseError {
        let c = self.cur();
        ParseError {
            line: c.line,
            col: c.col,
            message: m.into(),
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(&self.cur().tok, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{kw}`")))
        }
    }

    fn peek_sym(&self, sym: &str) -> bool {
        matches!(&self.cur().tok, Tok::Sym(s) if *s == sym)
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if self.peek_sym(sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{sym}`")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match &self.cur().tok {
            Tok::Ident(s) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.error("expected identifier")),
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        // Allow a trailing semicolon.
        self.eat_sym(";");
        if matches!(self.cur().tok, Tok::Eof) {
            Ok(())
        } else {
            Err(self.error("expected end of input"))
        }
    }

    /// `view NAME as <selects> ;`
    fn view_def(&mut self) -> Result<(oorq_schema::RelationId, Vec<SpjNode>), ParseError> {
        self.expect_kw("view")?;
        let name = self.ident()?;
        let rel = self
            .catalog
            .relation_by_name(&name)
            .filter(|r| self.catalog.relation(*r).kind == ViewKind::View)
            .ok_or_else(|| self.error(format!("`{name}` is not a declared view of the schema")))?;
        self.expect_kw("as")?;
        let defs = self.selects()?;
        self.expect_sym(";")?;
        Ok((rel, defs))
    }

    /// `select ... (union select ...)*`
    fn selects(&mut self) -> Result<Vec<SpjNode>, ParseError> {
        let mut out = vec![self.select()?];
        while self.eat_kw("union") {
            out.push(self.select()?);
        }
        Ok(out)
    }

    /// `select [f: e, ...] from v in Name, ... (where expr)?`
    fn select(&mut self) -> Result<SpjNode, ParseError> {
        self.expect_kw("select")?;
        self.expect_sym("[")?;
        let mut out_proj = Vec::new();
        loop {
            let field = self.ident()?;
            self.expect_sym(":")?;
            let e = self.expr()?;
            out_proj.push((field, e));
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym("]")?;
        self.expect_kw("from")?;
        let mut inputs = Vec::new();
        loop {
            let var = self.ident()?;
            self.expect_kw("in")?;
            let name = self.ident()?;
            let name_ref = if let Some(c) = self.catalog.class_by_name(&name) {
                NameRef::Class(c)
            } else if let Some(r) = self.catalog.relation_by_name(&name) {
                NameRef::Relation(r)
            } else {
                return Err(self.error(format!("unknown class or relation `{name}`")));
            };
            inputs.push(QArc::new(name_ref, var));
            if !self.eat_sym(",") {
                break;
            }
        }
        let pred = if self.eat_kw("where") {
            self.expr()?
        } else {
            Expr::True
        };
        Ok(SpjNode {
            inputs,
            pred,
            out_proj,
        })
    }

    /// Disjunction.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.conjunction()?;
        while self.eat_kw("or") {
            let r = self.conjunction()?;
            e = e.or(r);
        }
        Ok(e)
    }

    fn conjunction(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.comparison()?;
        while self.eat_kw("and") {
            let r = self.comparison()?;
            e = e.and(r);
        }
        Ok(e)
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("not") {
            self.expect_sym("(")?;
            let inner = self.expr()?;
            self.expect_sym(")")?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        let lhs = self.sum()?;
        let op = if self.eat_sym("=") {
            Some(CmpOp::Eq)
        } else if self.eat_sym("<>") {
            Some(CmpOp::Ne)
        } else if self.eat_sym("<=") {
            Some(CmpOp::Le)
        } else if self.eat_sym(">=") {
            Some(CmpOp::Ge)
        } else if self.eat_sym("<") {
            Some(CmpOp::Lt)
        } else if self.eat_sym(">") {
            Some(CmpOp::Gt)
        } else {
            None
        };
        match op {
            None => Ok(lhs),
            Some(op) => {
                let rhs = self.sum()?;
                Ok(Expr::Cmp {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                })
            }
        }
    }

    fn sum(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while self.eat_sym("+") {
            let r = self.primary()?;
            e = e.add(r);
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.cur().tok.clone() {
            Tok::Int(i) => {
                self.pos += 1;
                Ok(Expr::Lit(Literal::Int(i)))
            }
            Tok::Float(x) => {
                self.pos += 1;
                Ok(Expr::Lit(Literal::Float(x)))
            }
            Tok::Str(s) => {
                self.pos += 1;
                Ok(Expr::Lit(Literal::Text(s)))
            }
            Tok::Sym("(") => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Tok::Ident(id) if id.eq_ignore_ascii_case("null") => {
                self.pos += 1;
                Ok(Expr::Lit(Literal::Null))
            }
            Tok::Ident(id) if id.eq_ignore_ascii_case("true") => {
                self.pos += 1;
                Ok(Expr::Lit(Literal::Bool(true)))
            }
            Tok::Ident(id) if id.eq_ignore_ascii_case("false") => {
                self.pos += 1;
                Ok(Expr::Lit(Literal::Bool(false)))
            }
            Tok::Ident(id) => {
                self.pos += 1;
                let mut steps = Vec::new();
                while self.eat_sym(".") {
                    steps.push(self.ident()?);
                }
                if steps.is_empty() {
                    Ok(Expr::Var(id))
                } else {
                    Ok(Expr::Path { base: id, steps })
                }
            }
            _ => Err(self.error("expected expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::music_catalog;

    const INFLUENCER_VIEW: &str = r#"
        view Influencer as
          select [master: x.master, disciple: x, gen: 1]
          from x in Composer
          where x.master <> null
          union
          select [master: i.master, disciple: x, gen: i.gen + 1]
          from i in Influencer, x in Composer
          where i.disciple = x.master;
    "#;

    #[test]
    fn parses_the_fig3_program() {
        let cat = music_catalog();
        let src = format!(
            "{INFLUENCER_VIEW}
             select [name: i.disciple.name]
             from i in Influencer
             where i.master.works.instruments.name = \"harpsichord\" and i.gen >= 6"
        );
        let q = parse_query(&cat, &src).unwrap();
        q.validate(&cat).unwrap();
        assert_eq!(q.nodes.len(), 3, "P3 + expanded P1, P2");
        // Identical to the hand-built Figure 3 graph.
        let mut reference = crate::paper::fig3_query(&cat);
        crate::paper::influencer_view(&cat)
            .expand(&mut reference, &cat)
            .unwrap();
        assert_eq!(
            q.display(&cat).to_string(),
            reference.display(&cat).to_string()
        );
    }

    #[test]
    fn parses_fig2_style_query() {
        let cat = music_catalog();
        let q = parse_query(
            &cat,
            r#"select [title: w.title]
               from c in Composer
               where c.name = "Bach" and c.works.instruments.name = "harpsichord"
                 and c.works.instruments.name = "flute" and c.works.title = w.title"#,
        );
        // `w` is unbound — expect a validation error at normalize time,
        // but the parse itself must succeed.
        assert!(q.is_ok());
    }

    #[test]
    fn comments_whitespace_and_semicolons() {
        let cat = music_catalog();
        let q = parse_query(
            &cat,
            "-- all composers\nselect [n: x.name] from x in Composer;",
        )
        .unwrap();
        q.validate(&cat).unwrap();
    }

    #[test]
    fn operators_and_literals() {
        let cat = music_catalog();
        let q = parse_query(
            &cat,
            r#"select [n: x.name, b: x.birth_year]
               from x in Composer
               where (x.birth_year >= 1650 and x.birth_year < 1700)
                  or x.name <> "Bach" or x.birth_year = -1
                  or not(x.birth_year <= 10) and x.name > "A""#,
        )
        .unwrap();
        let s = q.display(&cat).to_string();
        assert!(s.contains("x.birth_year>=1650"), "{s}");
        assert!(s.contains("-1"), "{s}");
    }

    #[test]
    fn float_and_bool_literals() {
        let cat = music_catalog();
        let q = parse_query(
            &cat,
            "select [n: x.name] from x in Composer where x.birth_year >= 1650.5 and true = true",
        )
        .unwrap();
        assert!(q.display(&cat).to_string().contains("1650.5"));
    }

    #[test]
    fn error_positions_are_reported() {
        let cat = music_catalog();
        let err = parse_query(&cat, "select [n: x.name] frum x in Composer").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("from"), "{err}");
        let err = parse_query(&cat, "select [n: x.name]\nfrom x in Nope").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("Nope"));
        let err = parse_query(&cat, "select [n: @]").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        let err = parse_query(&cat, "select [n: \"oops]").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn view_must_be_declared_in_schema() {
        let cat = music_catalog();
        let err = parse_query(
            &cat,
            "view Nonsense as select [a: x.name] from x in Composer;
             select [a: x.name] from x in Composer",
        )
        .unwrap_err();
        assert!(err.message.contains("not a declared view"), "{err}");
    }

    #[test]
    fn missing_view_definition_is_reported_at_expansion() {
        let cat = music_catalog();
        let err = parse_query(&cat, "select [g: i.gen] from i in Influencer").unwrap_err();
        assert!(err.message.contains("Influencer"), "{err}");
    }

    #[test]
    fn parsed_views_round_trip_through_the_optimizer_pipeline_inputs() {
        // The program parser and the hand-built constructors agree on the
        // §4.5 query too.
        let cat = music_catalog();
        let src = format!(
            "{INFLUENCER_VIEW}
             select [name: i.disciple.name]
             from i in Influencer, c in Composer
             where i.master = c.master and c.name = \"Bach\""
        );
        let q = parse_query(&cat, &src).unwrap();
        let mut reference = crate::paper::sec45_pushjoin_query(&cat);
        crate::paper::influencer_view(&cat)
            .expand(&mut reference, &cat)
            .unwrap();
        assert_eq!(
            q.display(&cat).to_string(),
            reference.display(&cat).to_string()
        );
    }
}
