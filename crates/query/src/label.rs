//! Tree labels: the tree-shaped adornments on query-graph arcs.
//!
//! §2.2 of the paper: incoming arcs of predicate nodes are labelled by
//! trees which indicate, through variables, the sub-objects needed by the
//! predicate or the output projection. "These trees can be viewed as
//! tree-shaped adornments \[BR86\] ... in an object-oriented model they are
//! trees" (footnote 1). Overlapping path expressions share tree prefixes,
//! which is what lets the optimizer factorize them without rewriting.

use std::fmt;

use oorq_schema::{Catalog, ResolvedType};

use crate::error::QueryError;

/// A tree label: a set of child entries `(Att, tree, variable)`.
///
/// `attr` is `None` for a subtree that does not implement a named
/// attribute (the element step under a set- or list-typed node, printed
/// `NIL` by the paper). `var` is `None` when no variable is bound at the
/// child node.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TreeLabel {
    /// Child entries.
    pub children: Vec<TreeChild>,
}

/// One child entry of a tree label.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeChild {
    /// Attribute implemented by the subtree; `None` for element steps.
    pub attr: Option<String>,
    /// Variable bound at the child node.
    pub var: Option<String>,
    /// The subtree.
    pub tree: TreeLabel,
}

impl TreeLabel {
    /// An empty (leaf) tree label — denoted `{}` by the paper.
    pub fn leaf() -> Self {
        TreeLabel::default()
    }

    /// True when the label requests no sub-objects.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Add an attribute child binding a variable at a leaf:
    /// `(attr, {}, var)`.
    pub fn attr_var(mut self, attr: impl Into<String>, var: impl Into<String>) -> Self {
        self.children.push(TreeChild {
            attr: Some(attr.into()),
            var: Some(var.into()),
            tree: TreeLabel::leaf(),
        });
        self
    }

    /// Add an attribute child with a subtree (no variable).
    pub fn attr_tree(mut self, attr: impl Into<String>, tree: TreeLabel) -> Self {
        self.children.push(TreeChild {
            attr: Some(attr.into()),
            var: None,
            tree,
        });
        self
    }

    /// Add an element step (`NIL` attribute) with a subtree.
    pub fn elem(mut self, tree: TreeLabel) -> Self {
        self.children.push(TreeChild {
            attr: None,
            var: None,
            tree,
        });
        self
    }

    /// Add an element step binding a variable at a leaf.
    pub fn elem_var(mut self, var: impl Into<String>) -> Self {
        self.children.push(TreeChild {
            attr: None,
            var: Some(var.into()),
            tree: TreeLabel::leaf(),
        });
        self
    }

    /// All variables bound anywhere in the tree.
    pub fn vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        for c in &self.children {
            if let Some(v) = &c.var {
                out.push(v.clone());
            }
            c.tree.collect_vars(out);
        }
    }

    /// Validate the tree label against the type of the labelled node.
    /// Attribute steps require an object (or tuple) type possessing the
    /// attribute; element steps require a collection type.
    pub fn validate(&self, catalog: &Catalog, ty: &ResolvedType) -> Result<(), QueryError> {
        for c in &self.children {
            match (&c.attr, ty) {
                (Some(attr), ResolvedType::Object(class)) => {
                    let (_, a) =
                        catalog
                            .attr(*class, attr)
                            .ok_or_else(|| QueryError::UnknownAttribute {
                                class: catalog.class(*class).name.clone(),
                                attr: attr.clone(),
                            })?;
                    c.tree.validate(catalog, &a.ty)?;
                }
                (Some(attr), ResolvedType::Tuple(fields)) => {
                    let (_, fty) = fields
                        .iter()
                        .find(|(n, _)| n == attr)
                        .ok_or_else(|| QueryError::UnknownField(attr.clone()))?;
                    c.tree.validate(catalog, fty)?;
                }
                (None, ResolvedType::Set(elem)) | (None, ResolvedType::List(elem)) => {
                    c.tree.validate(catalog, elem)?;
                }
                (Some(attr), other) => {
                    return Err(QueryError::BadLabelStep {
                        step: attr.clone(),
                        ty: format!("{other:?}"),
                    })
                }
                (None, other) => {
                    return Err(QueryError::BadLabelStep {
                        step: "NIL".into(),
                        ty: format!("{other:?}"),
                    })
                }
            }
        }
        Ok(())
    }

    /// Graft a path expression onto the tree, returning the variable bound
    /// at its end. Attribute prefixes are shared with existing branches;
    /// element steps (inserted automatically at collection types) always
    /// open a fresh branch, so independently grafted paths make
    /// independent member choices. Identical full paths should be grafted
    /// once and their variable reused by the caller.
    pub fn graft_path(
        &mut self,
        catalog: &Catalog,
        ty: &ResolvedType,
        steps: &[String],
        fresh: &mut impl FnMut() -> String,
    ) -> Result<String, QueryError> {
        // Descend through collection constructors with a fresh element
        // branch before consuming an attribute step.
        if let ResolvedType::Set(elem) | ResolvedType::List(elem) = ty {
            self.children.push(TreeChild {
                attr: None,
                var: None,
                tree: TreeLabel::leaf(),
            });
            let child = self.children.last_mut().expect("just pushed");
            let v = child.tree.graft_path(catalog, elem, steps, fresh)?;
            if steps.is_empty() {
                child.var = Some(v.clone());
            }
            return Ok(v);
        }
        let Some((step, rest)) = steps.split_first() else {
            // Path ends here: bind a variable at this node. The caller
            // (arc) handles binding at the root; for subtrees this case is
            // reached through the collection arm above.
            let v = fresh();
            return Ok(v);
        };
        let child_ty = match ty {
            ResolvedType::Object(class) => {
                let (_, a) =
                    catalog
                        .attr(*class, step)
                        .ok_or_else(|| QueryError::UnknownAttribute {
                            class: catalog.class(*class).name.clone(),
                            attr: step.clone(),
                        })?;
                a.ty.clone()
            }
            ResolvedType::Tuple(fields) => fields
                .iter()
                .find(|(n, _)| n == step)
                .map(|(_, t)| t.clone())
                .ok_or_else(|| QueryError::UnknownField(step.clone()))?,
            other => {
                return Err(QueryError::BadLabelStep {
                    step: step.clone(),
                    ty: format!("{other:?}"),
                })
            }
        };
        // Share an existing attribute branch when present.
        let idx = match self
            .children
            .iter()
            .position(|c| c.attr.as_deref() == Some(step.as_str()))
        {
            Some(i) => i,
            None => {
                self.children.push(TreeChild {
                    attr: Some(step.clone()),
                    var: None,
                    tree: TreeLabel::leaf(),
                });
                self.children.len() - 1
            }
        };
        let child = &mut self.children[idx];
        if rest.is_empty() && !matches!(child_ty, ResolvedType::Set(_) | ResolvedType::List(_)) {
            // Bind (or reuse) the variable at the attribute node itself.
            if let Some(v) = &child.var {
                return Ok(v.clone());
            }
            let v = fresh();
            child.var = Some(v.clone());
            return Ok(v);
        }
        child.tree.graft_path(catalog, &child_ty, rest, fresh)
    }
}

impl fmt::Display for TreeLabel {
    /// The paper's denotation: `{(Att, tree, var)}` with `NIL` for absent
    /// attributes/variables and `{}` for leaves.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "({}, {}, {})",
                c.attr.as_deref().unwrap_or("NIL"),
                c.tree,
                c.var.as_deref().unwrap_or("NIL")
            )?;
        }
        write!(f, "}}")
    }
}
