//! Predicate and projection expressions of query graphs.

use std::collections::BTreeSet;
use std::fmt;

/// A literal constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Text.
    Text(String),
    /// Boolean.
    Bool(bool),
    /// Null.
    Null,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => write!(f, "{x}"),
            Literal::Text(s) => write!(f, "\"{s}\""),
            Literal::Bool(b) => write!(f, "{b}"),
            Literal::Null => write!(f, "null"),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// An expression over the variables bound by the tree labels of a
/// predicate node's incoming arcs.
///
/// A [`Expr::Path`] digs into an object graph from a variable through a
/// sequence of attribute names (the paper's *path expressions*, e.g.
/// `master.works.instruments.name`); collection-valued steps give a path
/// *existential* semantics in comparisons. Method (computed-attribute)
/// steps are written like ordinary attributes.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Always-true predicate.
    True,
    /// A constant.
    Lit(Literal),
    /// A variable bound by a tree label (or an arc's root variable).
    Var(String),
    /// A path expression rooted at a variable.
    Path {
        /// Root variable.
        base: String,
        /// Attribute steps.
        steps: Vec<String>,
    },
    /// Comparison. If either side evaluates to a collection the semantics
    /// is existential (some member satisfies it).
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Arithmetic addition (covers the paper's `add1gen(i.gen)`).
    Add(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Lit(Literal::Int(v))
    }
    /// Text literal.
    pub fn text(v: impl Into<String>) -> Expr {
        Expr::Lit(Literal::Text(v.into()))
    }
    /// Variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }
    /// Path expression `base.step1.step2...`.
    pub fn path(base: impl Into<String>, steps: &[&str]) -> Expr {
        Expr::Path {
            base: base.into(),
            steps: steps.iter().map(|s| s.to_string()).collect(),
        }
    }
    /// `self = rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Cmp {
            op: CmpOp::Eq,
            lhs: Box::new(self),
            rhs: Box::new(rhs),
        }
    }
    /// `self <> rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Cmp {
            op: CmpOp::Ne,
            lhs: Box::new(self),
            rhs: Box::new(rhs),
        }
    }
    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp {
            op: CmpOp::Ge,
            lhs: Box::new(self),
            rhs: Box::new(rhs),
        }
    }
    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Cmp {
            op: CmpOp::Lt,
            lhs: Box::new(self),
            rhs: Box::new(rhs),
        }
    }
    /// `self and rhs` (absorbs `True`).
    pub fn and(self, rhs: Expr) -> Expr {
        match (self, rhs) {
            (Expr::True, r) => r,
            (l, Expr::True) => l,
            (l, r) => Expr::And(Box::new(l), Box::new(r)),
        }
    }
    /// `self or rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }
    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// Top-level conjuncts (flattening nested `And`s).
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::And(l, r) => {
                    walk(l, out);
                    walk(r, out);
                }
                Expr::True => {}
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Rebuild a conjunction from conjuncts.
    pub fn conjoin(parts: impl IntoIterator<Item = Expr>) -> Expr {
        parts.into_iter().fold(Expr::True, Expr::and)
    }

    /// All variables referenced (including path bases).
    pub fn vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::True | Expr::Lit(_) => {}
            Expr::Var(v) => {
                out.insert(v.clone());
            }
            Expr::Path { base, .. } => {
                out.insert(base.clone());
            }
            Expr::Cmp { lhs, rhs, .. }
            | Expr::And(lhs, rhs)
            | Expr::Or(lhs, rhs)
            | Expr::Add(lhs, rhs) => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
            Expr::Not(e) => e.collect_vars(out),
        }
    }

    /// All path expressions occurring in the expression.
    pub fn paths(&self) -> Vec<(&str, &[String])> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<(&'a str, &'a [String])>) {
            match e {
                Expr::Path { base, steps } => out.push((base.as_str(), steps.as_slice())),
                Expr::Cmp { lhs, rhs, .. }
                | Expr::And(lhs, rhs)
                | Expr::Or(lhs, rhs)
                | Expr::Add(lhs, rhs) => {
                    walk(lhs, out);
                    walk(rhs, out);
                }
                Expr::Not(e) => walk(e, out),
                _ => {}
            }
        }
        walk(self, &mut out);
        out
    }

    /// Replace every occurrence of path/var expressions per the mapping
    /// returned by `subst` (used by normalization to rewrite paths into
    /// tree-label variables).
    pub fn map_leaves(&self, subst: &mut impl FnMut(&Expr) -> Option<Expr>) -> Expr {
        if let Some(replacement) = subst(self) {
            return replacement;
        }
        match self {
            Expr::Cmp { op, lhs, rhs } => Expr::Cmp {
                op: *op,
                lhs: Box::new(lhs.map_leaves(subst)),
                rhs: Box::new(rhs.map_leaves(subst)),
            },
            Expr::And(l, r) => {
                Expr::And(Box::new(l.map_leaves(subst)), Box::new(r.map_leaves(subst)))
            }
            Expr::Or(l, r) => {
                Expr::Or(Box::new(l.map_leaves(subst)), Box::new(r.map_leaves(subst)))
            }
            Expr::Add(l, r) => {
                Expr::Add(Box::new(l.map_leaves(subst)), Box::new(r.map_leaves(subst)))
            }
            Expr::Not(e) => Expr::Not(Box::new(e.map_leaves(subst))),
            other => other.clone(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::True => write!(f, "true"),
            Expr::Lit(l) => write!(f, "{l}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Path { base, steps } => {
                write!(f, "{base}")?;
                for s in steps {
                    write!(f, ".{s}")?;
                }
                Ok(())
            }
            Expr::Cmp { op, lhs, rhs } => write!(f, "{lhs}{op}{rhs}"),
            Expr::And(l, r) => write!(f, "{l} and {r}"),
            Expr::Or(l, r) => write!(f, "({l} or {r})"),
            Expr::Not(e) => write!(f, "not({e})"),
            Expr::Add(l, r) => write!(f, "{l}+{r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_flatten_and_absorb_true() {
        let e = Expr::var("n")
            .eq(Expr::text("Bach"))
            .and(Expr::True)
            .and(Expr::var("i1").eq(Expr::text("harpsichord")));
        assert_eq!(e.conjuncts().len(), 2);
        let rebuilt = Expr::conjoin(e.conjuncts().into_iter().cloned());
        assert_eq!(rebuilt.conjuncts().len(), 2);
    }

    #[test]
    fn vars_include_path_bases() {
        let e = Expr::path("i", &["master", "works"]).eq(Expr::var("x"));
        let vars = e.vars();
        assert!(vars.contains("i") && vars.contains("x"));
    }

    #[test]
    fn display_matches_paper_style() {
        let e = Expr::var("n")
            .eq(Expr::text("Bach"))
            .and(Expr::path("i", &["gen"]).ge(Expr::int(6)));
        assert_eq!(e.to_string(), "n=\"Bach\" and i.gen>=6");
        assert_eq!(
            Expr::path("i", &["gen"]).add(Expr::int(1)).to_string(),
            "i.gen+1"
        );
    }

    #[test]
    fn map_leaves_rewrites_paths() {
        let e = Expr::path("i", &["gen"]).ge(Expr::int(6));
        let rewritten = e.map_leaves(&mut |leaf| match leaf {
            Expr::Path { .. } => Some(Expr::var("g")),
            _ => None,
        });
        assert_eq!(rewritten.to_string(), "g>=6");
    }

    #[test]
    fn paths_collected() {
        let e = Expr::path("i", &["a"]).eq(Expr::path("x", &["b", "c"]));
        let ps = e.paths();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[1].1.len(), 2);
    }
}
