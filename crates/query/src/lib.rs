//! Query graphs for object-oriented recursive queries (§2 of the paper).
//!
//! Queries are represented as *query graphs*: sets of `(Name ← p)` pairs
//! where each predicate node `p = SPJ(In, pred, outproj)` consumes name
//! nodes through arcs labelled by *tree labels* — tree-shaped adornments
//! binding variables to the needed sub-objects. Recursive views (like the
//! paper's `Influencer`) are ordinary sets of predicate nodes producing
//! the same relation name; the optimizer's `rewrite` step later makes the
//! `Union` and `Fix` operators explicit.

mod error;
mod expr;
mod graph;
mod label;
pub mod paper;
pub mod parse;

pub use error::QueryError;
pub use expr::{CmpOp, Expr, Literal};
pub use graph::{expr_type, GraphTerm, NameRef, QArc, QueryGraph, SpjNode, ViewRegistry};
pub use label::{TreeChild, TreeLabel};
pub use parse::{parse_program, parse_query, ParseError, ParsedProgram};

#[cfg(test)]
mod tests;
