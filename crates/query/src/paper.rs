//! The paper's running example: the Figure 1 schema, the Figure 2 query,
//! the `Influencer` recursive view of §2.3, and the Figure 3 query.
//!
//! These constructions are shared by tests, examples and the benchmark
//! harness that regenerates the paper's figures.

use oorq_schema::{AttributeDef, Catalog, ClassDef, Field, RelationDef, SchemaBuilder, TypeExpr};

use crate::expr::Expr;
use crate::graph::{NameRef, QArc, QueryGraph, SpjNode, ViewRegistry};
use crate::label::TreeLabel;

/// Build the Figure 1 conceptual schema: `Person`, `Composer isa Person`,
/// `Composition`, `Instrument`, the `Play` relation, plus the
/// `Influencer` view declaration of §2.3.
pub fn music_catalog() -> Catalog {
    SchemaBuilder::new()
        .class(
            ClassDef::new("Person")
                .attr(AttributeDef::stored("name", TypeExpr::text()))
                .attr(AttributeDef::stored("birth_year", TypeExpr::int()))
                .attr(AttributeDef::computed("age", TypeExpr::int(), 2.0)),
        )
        .class(
            ClassDef::new("Composer")
                .isa("Person")
                .attr(AttributeDef::stored("master", TypeExpr::class("Composer")))
                .attr(AttributeDef::stored(
                    "works",
                    TypeExpr::set(TypeExpr::class("Composition")),
                )),
        )
        .class(
            ClassDef::new("Composition")
                .attr(AttributeDef::stored("title", TypeExpr::text()))
                .attr(
                    AttributeDef::stored("author", TypeExpr::class("Composer"))
                        .inverse_of("Composer", "works"),
                )
                .attr(AttributeDef::stored(
                    "instruments",
                    TypeExpr::set(TypeExpr::class("Instrument")),
                )),
        )
        .class(ClassDef::new("Instrument").attr(AttributeDef::stored("name", TypeExpr::text())))
        .relation(RelationDef::new(
            "Play",
            TypeExpr::Tuple(vec![
                Field::new("who", TypeExpr::class("Person")),
                Field::new("instrument", TypeExpr::class("Instrument")),
            ]),
        ))
        .view(RelationDef::new(
            "Influencer",
            TypeExpr::Tuple(vec![
                Field::new("master", TypeExpr::class("Composer")),
                Field::new("disciple", TypeExpr::class("Composer")),
                Field::new("gen", TypeExpr::int()),
            ]),
        ))
        .build()
        .expect("figure 1 schema must validate")
}

/// The Figure 2 query: *"the title of the works of Bach including a
/// harpsichord and a flute"*.
///
/// The tree label `tr1` is built exactly as the paper denotes it: the
/// composer's `name` binds `n`; one element of `works` (the same work)
/// binds `t` on its title and two independent `instruments` elements bind
/// `i1` and `i2` on their names.
pub fn fig2_query(catalog: &Catalog) -> QueryGraph {
    let composer = catalog.class_by_name("Composer").expect("music schema");
    // trComposition: {(title, {}, t), (instruments, {(NIL, {(name,{},i1)}, NIL),
    //                                                (NIL, {(name,{},i2)}, NIL)}, NIL)}
    let tr_composition = TreeLabel::leaf().attr_var("title", "t").attr_tree(
        "instruments",
        TreeLabel::leaf()
            .elem(TreeLabel::leaf().attr_var("name", "i1"))
            .elem(TreeLabel::leaf().attr_var("name", "i2")),
    );
    // tr1: {(name, {}, n), (works, {(NIL, trComposition, NIL)}, NIL)}
    let tr1 = TreeLabel::leaf()
        .attr_var("name", "n")
        .attr_tree("works", TreeLabel::leaf().elem(tr_composition));
    let mut q = QueryGraph::new(NameRef::Derived("Answer".into()));
    q.add_spj(
        NameRef::Derived("Answer".into()),
        SpjNode {
            inputs: vec![QArc {
                name: NameRef::Class(composer),
                var: None,
                label: tr1,
            }],
            pred: Expr::var("n")
                .eq(Expr::text("Bach"))
                .and(Expr::var("i1").eq(Expr::text("harpsichord")))
                .and(Expr::var("i2").eq(Expr::text("flute"))),
            out_proj: vec![("title".into(), Expr::var("t"))],
        },
    );
    q
}

/// Register the §2.3 `Influencer` view:
///
/// ```text
/// relation Influencer
///   includes (select [master: x.master, disciple: x, gen: 1]
///             from x in Composer)
///   union    (select [master: i.master, disciple: x, gen: add1gen(i.gen)]
///             from i in Influencer, x in Composer
///             where i.disciple = x.master)
/// ```
pub fn influencer_view(catalog: &Catalog) -> ViewRegistry {
    let composer = catalog.class_by_name("Composer").expect("music schema");
    let influencer = catalog
        .relation_by_name("Influencer")
        .expect("music schema");
    // P1: base case.
    let p1 = SpjNode {
        inputs: vec![QArc::new(NameRef::Class(composer), "x")],
        pred: Expr::path("x", &["master"]).ne(Expr::Lit(crate::expr::Literal::Null)),
        out_proj: vec![
            ("master".into(), Expr::path("x", &["master"])),
            ("disciple".into(), Expr::var("x")),
            ("gen".into(), Expr::int(1)),
        ],
    };
    // P2: recursive case.
    let p2 = SpjNode {
        inputs: vec![
            QArc::new(NameRef::Relation(influencer), "i"),
            QArc::new(NameRef::Class(composer), "x"),
        ],
        pred: Expr::path("i", &["disciple"]).eq(Expr::path("x", &["master"])),
        out_proj: vec![
            ("master".into(), Expr::path("i", &["master"])),
            ("disciple".into(), Expr::var("x")),
            ("gen".into(), Expr::path("i", &["gen"]).add(Expr::int(1))),
        ],
    };
    let mut reg = ViewRegistry::new();
    reg.define(influencer, vec![p1, p2]);
    reg
}

/// The Figure 3 query: *"the names of the composers influenced by
/// composers for harpsichord that lived 6 generations before"* — P3 over
/// the `Influencer` view, with the selection on the master's instruments
/// (the path `master.works.instruments.name`), the selection `gen >= 6`,
/// and the projection on the disciple's name.
pub fn fig3_query(catalog: &Catalog) -> QueryGraph {
    let influencer = catalog
        .relation_by_name("Influencer")
        .expect("music schema");
    let mut q = QueryGraph::new(NameRef::Derived("Answer".into()));
    q.add_spj(
        NameRef::Derived("Answer".into()),
        SpjNode {
            inputs: vec![QArc::new(NameRef::Relation(influencer), "i")],
            pred: Expr::path("i", &["master", "works", "instruments", "name"])
                .eq(Expr::text("harpsichord"))
                .and(Expr::path("i", &["gen"]).ge(Expr::int(6))),
            out_proj: vec![("name".into(), Expr::path("i", &["disciple", "name"]))],
        },
    );
    q
}

/// The §4.5 push-join query: *"the composers that were influenced by the
/// masters of Bach"* — a very selective explicit join
/// `Influencer.master = Composer.master and Composer.name = "Bach"`.
pub fn sec45_pushjoin_query(catalog: &Catalog) -> QueryGraph {
    let influencer = catalog
        .relation_by_name("Influencer")
        .expect("music schema");
    let composer = catalog.class_by_name("Composer").expect("music schema");
    let mut q = QueryGraph::new(NameRef::Derived("Answer".into()));
    q.add_spj(
        NameRef::Derived("Answer".into()),
        SpjNode {
            inputs: vec![
                QArc::new(NameRef::Relation(influencer), "i"),
                QArc::new(NameRef::Class(composer), "c"),
            ],
            pred: Expr::path("i", &["master"])
                .eq(Expr::path("c", &["master"]))
                .and(Expr::path("c", &["name"]).eq(Expr::text("Bach"))),
            out_proj: vec![("name".into(), Expr::path("i", &["disciple", "name"]))],
        },
    );
    q
}
