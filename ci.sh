#!/bin/sh
# Repo CI gate: formatting, lints, tests. Run from the repo root.
set -eu

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "== cargo build --release =="
cargo build --release --workspace

echo "== reproduce smoke (fig7 predicted-vs-observed) =="
cargo run --release -q -p oorq-bench --bin reproduce fig7 | grep "predicted vs observed" >/dev/null

echo "== reproduce smoke (calibration error tables) =="
cargo run --release -q -p oorq-bench --bin reproduce calibrate | grep "median relative error" >/dev/null

echo "== calibration regression gate =="
cargo run --release -q -p oorq-bench --bin reproduce calibrate-gate

echo "== reproduce smoke (fixpoint cardinality feedback) =="
cargo run --release -q -p oorq-bench --bin reproduce feedback | grep "fixpoints joined" >/dev/null

echo "== cardinality-feedback regression gate =="
cargo run --release -q -p oorq-bench --bin reproduce feedback-gate

echo "== reproduce smoke (static bounds vs observed counters) =="
cargo run --release -q -p oorq-bench --bin reproduce analyze music-fig3 | grep "bounds" >/dev/null

echo "== analysis soundness gate (whole corpus, both strategies) =="
cargo run --release -q -p oorq-bench --bin reproduce analyze-gate

echo "== plan-mutation soundness fuzzer (CI smoke parameters) =="
cargo run --release -q -p oorq-bench --bin reproduce fuzz

echo "== parallel-execution determinism gate (2 workers vs serial) =="
cargo run --release -q -p oorq-bench --bin reproduce parallel --threads 2

echo "== reproduce smoke (spill-cliff calibration sweep) =="
cargo run --release -q -p oorq-bench --bin reproduce spill | grep "median relative page-read error" >/dev/null

echo "== spill-cliff regression gate =="
cargo run --release -q -p oorq-bench --bin reproduce spill-gate

echo "== low-budget differential smoke (spilling breakers, byte-identical answers) =="
OORQ_MEMORY_BUDGET=8 cargo test -q --release --test differential --test parallel_differential \
    --test serve_differential
cargo run --release -q -p oorq-bench --bin reproduce parallel --threads 2 --memory-budget 8

echo "== provable-pruning smoke (pruned-proven candidates in the search-space table) =="
rm -rf target/prune-smoke
cargo run --release -q -p oorq-bench --bin reproduce trace music-pushjoin target/prune-smoke \
    | grep "pruned-proven" >/dev/null

echo "== reproduce smoke (always-on metrics: percentiles + EXPLAIN ANALYZE) =="
cargo run --release -q -p oorq-bench --bin reproduce metrics music > target/metrics-smoke.txt
grep "p99" target/metrics-smoke.txt >/dev/null
grep "EXPLAIN ANALYZE" target/metrics-smoke.txt >/dev/null

echo "== metrics gate (stable series names + recorder overhead caps) =="
cargo run --release -q -p oorq-bench --bin reproduce metrics-gate

echo "== trace smoke (emit + validate trace.json with the in-repo checker) =="
rm -rf target/trace-smoke
cargo run --release -q -p oorq-bench --bin reproduce trace music-fig7 target/trace-smoke \
    | grep "Rejected candidates" >/dev/null
cargo run --release -q -p oorq-bench --bin reproduce trace-check target/trace-smoke/trace-music-fig7.json

echo "== serve smoke (concurrent sessions, byte-identity, 2 threads) =="
cargo run --release -q -p oorq-bench --bin reproduce serve --queries 120 --sessions 2 --threads 2

echo "== serve gate (full replay, plan-cache hit rate) =="
cargo run --release -q -p oorq-bench --bin reproduce serve-gate

echo "CI OK"
