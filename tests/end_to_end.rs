//! Cross-crate integration tests: every plan the optimizer emits —
//! under every strategy — must produce exactly the reference evaluator's
//! answer, across schemas and physical designs.

use std::sync::Arc;

use oorq::cost::{CostModel, CostParams};
use oorq::datagen::{
    parts_catalog, ChainConfig, ChainDb, MusicConfig, MusicDb, PartsConfig, PartsDb,
};
use oorq::exec::{eval_query_graph, Executor, MethodRegistry};
use oorq::index::{IndexSet, PathIndex, SelectionIndex};
use oorq::optimizer::{Optimized, Optimizer, OptimizerConfig};
use oorq::query::paper::{fig2_query, influencer_view, music_catalog, sec45_pushjoin_query};
use oorq::query::{Expr, NameRef, QArc, QueryGraph, SpjNode, ViewRegistry};
use oorq::storage::{Database, DbStats};

fn all_configs() -> Vec<OptimizerConfig> {
    vec![
        OptimizerConfig::cost_controlled(),
        OptimizerConfig::deductive_heuristic(),
        OptimizerConfig::never_push(),
        OptimizerConfig::exhaustive(),
        OptimizerConfig {
            spj_strategy: oorq::optimizer::SpjStrategy::Greedy,
            ..OptimizerConfig::cost_controlled()
        },
    ]
}

fn optimize(db: &Database, stats: &DbStats, q: &QueryGraph, config: OptimizerConfig) -> Optimized {
    let model = CostModel::new(db.catalog(), db.physical(), stats, CostParams::default());
    Optimizer::new(model, config)
        .optimize(q)
        .expect("optimizes")
}

fn check_equivalence(
    db: &mut Database,
    idx: &IndexSet,
    methods: &MethodRegistry,
    q: &QueryGraph,
    label: &str,
) {
    let stats = DbStats::collect(db);
    let reference = eval_query_graph(db, methods, q).expect("reference evaluates");
    for config in all_configs() {
        let plan = optimize(db, &stats, q, config.clone());
        let mut ex = Executor::new(db, idx, methods);
        let got = ex.run(&plan.pt).expect("plan executes");
        let mut a = reference.rows.clone();
        let mut b = got.rows.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "{label}: {config:?} diverged from the reference");
    }
}

fn music_setup(cfg: MusicConfig) -> (MusicDb, IndexSet) {
    let cat = Arc::new(music_catalog());
    let mut m = MusicDb::generate(cat, cfg);
    let mut idx = IndexSet::new();
    idx.add_path(PathIndex::build(
        &mut m.db,
        vec![
            (m.composer, m.works_attr),
            (m.composition, m.instruments_attr),
        ],
    ));
    idx.add_selection(SelectionIndex::build(&mut m.db, m.composer, m.name_attr));
    (m, idx)
}

fn fig3_gen(cat: &oorq::schema::Catalog, gen: i64) -> QueryGraph {
    let influencer = cat.relation_by_name("Influencer").unwrap();
    let mut q = QueryGraph::new(NameRef::Derived("Answer".into()));
    q.add_spj(
        NameRef::Derived("Answer".into()),
        SpjNode {
            inputs: vec![QArc::new(NameRef::Relation(influencer), "i")],
            pred: Expr::path("i", &["master", "works", "instruments", "name"])
                .eq(Expr::text("harpsichord"))
                .and(Expr::path("i", &["gen"]).ge(Expr::int(gen))),
            out_proj: vec![("name".into(), Expr::path("i", &["disciple", "name"]))],
        },
    );
    influencer_view(cat).expand(&mut q, cat).unwrap();
    q
}

#[test]
fn music_queries_all_strategies_match_reference() {
    let (mut m, idx) = music_setup(MusicConfig {
        chains: 3,
        chain_len: 5,
        works_per_composer: 2,
        instruments_per_work: 2,
        harpsichord_fraction: 0.5,
        ..Default::default()
    });
    let methods = MethodRegistry::new();
    let cat = m.db.catalog_rc();
    check_equivalence(&mut m.db, &idx, &methods, &fig2_query(&cat), "fig2");
    check_equivalence(&mut m.db, &idx, &methods, &fig3_gen(&cat, 2), "fig3");
    let qj = {
        let mut q = sec45_pushjoin_query(&cat);
        influencer_view(&cat).expand(&mut q, &cat).unwrap();
        q
    };
    check_equivalence(&mut m.db, &idx, &methods, &qj, "pushjoin");
}

#[test]
fn clustered_physical_design_matches_reference() {
    let (mut m, idx) = music_setup(MusicConfig {
        chains: 2,
        chain_len: 6,
        clustered: true,
        harpsichord_fraction: 0.6,
        ..Default::default()
    });
    let methods = MethodRegistry::new();
    let cat = m.db.catalog_rc();
    check_equivalence(
        &mut m.db,
        &idx,
        &methods,
        &fig3_gen(&cat, 2),
        "fig3-clustered",
    );
}

#[test]
fn queries_with_methods_match_reference() {
    // A query whose predicate invokes the computed attribute `age`.
    let (mut m, idx) = music_setup(MusicConfig {
        chains: 3,
        chain_len: 4,
        ..Default::default()
    });
    let cat = m.db.catalog_rc();
    let composer = cat.class_by_name("Composer").unwrap();
    let mut q = QueryGraph::new(NameRef::Derived("A".into()));
    q.add_spj(
        NameRef::Derived("A".into()),
        SpjNode {
            inputs: vec![QArc::new(NameRef::Class(composer), "x")],
            pred: Expr::path("x", &["age"]).ge(Expr::int(60)),
            out_proj: vec![("name".into(), Expr::path("x", &["name"]))],
        },
    );
    let methods = MethodRegistry::with_music_methods(&cat);
    check_equivalence(&mut m.db, &idx, &methods, &q, "method-query");
}

#[test]
fn parts_bom_query_matches_reference() {
    let cat = Arc::new(parts_catalog());
    let mut p = PartsDb::generate(
        Arc::clone(&cat),
        PartsConfig {
            roots: 2,
            fanout: 2,
            depth: 3,
            ..Default::default()
        },
    );
    let part = cat.class_by_name("Part").unwrap();
    let contains = cat.relation_by_name("Contains").unwrap();
    let mut reg = ViewRegistry::new();
    reg.define(
        contains,
        vec![
            SpjNode {
                inputs: vec![
                    QArc::new(NameRef::Class(part), "p"),
                    QArc::new(NameRef::Class(part), "s"),
                ],
                pred: Expr::path("p", &["subparts"]).eq(Expr::var("s")),
                out_proj: vec![
                    ("assembly".into(), Expr::var("p")),
                    ("component".into(), Expr::var("s")),
                    ("depth".into(), Expr::int(1)),
                ],
            },
            SpjNode {
                inputs: vec![
                    QArc::new(NameRef::Relation(contains), "c"),
                    QArc::new(NameRef::Class(part), "s"),
                ],
                pred: Expr::path("c", &["component", "subparts"]).eq(Expr::var("s")),
                out_proj: vec![
                    ("assembly".into(), Expr::path("c", &["assembly"])),
                    ("component".into(), Expr::var("s")),
                    (
                        "depth".into(),
                        Expr::path("c", &["depth"]).add(Expr::int(1)),
                    ),
                ],
            },
        ],
    );
    let mut q = QueryGraph::new(NameRef::Derived("Answer".into()));
    q.add_spj(
        NameRef::Derived("Answer".into()),
        SpjNode {
            inputs: vec![QArc::new(NameRef::Relation(contains), "k")],
            pred: Expr::path("k", &["assembly", "name"])
                .eq(Expr::text("asm0"))
                .and(Expr::path("k", &["component", "weight"]).ge(Expr::int(40))),
            out_proj: vec![
                ("component".into(), Expr::path("k", &["component", "name"])),
                (
                    "cost".into(),
                    Expr::path("k", &["component", "unit_test_cost"]),
                ),
            ],
        },
    );
    reg.expand(&mut q, &cat).unwrap();
    let methods = MethodRegistry::with_parts_methods(&cat);
    let idx = IndexSet::new();
    check_equivalence(&mut p.db, &idx, &methods, &q, "parts-bom");
    // Sanity: the answer is the set of heavy descendants of asm0.
    let reference = eval_query_graph(&p.db, &methods, &q).unwrap();
    assert!(!reference.is_empty());
}

#[test]
fn chain_joins_match_reference_across_strategies() {
    let mut chain = ChainDb::generate(ChainConfig {
        relations: 4,
        rows: 40,
        domain: 12,
        seed: 3,
    });
    let q = chain.chain_query(6);
    let methods = MethodRegistry::new();
    let idx = IndexSet::new();
    check_equivalence(&mut chain.db, &idx, &methods, &q, "chain-4");
}

#[test]
fn decomposed_extensions_still_answer_queries() {
    // Vertically decompose Composition; the executor reads through
    // fragments transparently.
    let (mut m, idx) = music_setup(MusicConfig {
        chains: 2,
        chain_len: 4,
        ..Default::default()
    });
    let cat = m.db.catalog_rc();
    let composition = cat.class_by_name("Composition").unwrap();
    let (title, _) = cat.attr(composition, "title").unwrap();
    let (author, _) = cat.attr(composition, "author").unwrap();
    let (instruments, _) = cat.attr(composition, "instruments").unwrap();
    m.db.decompose_vertical(composition, &[vec![title], vec![author, instruments]])
        .unwrap();
    let methods = MethodRegistry::new();
    // A query touching both fragments through paths.
    let composer = cat.class_by_name("Composer").unwrap();
    let mut q = QueryGraph::new(NameRef::Derived("A".into()));
    q.add_spj(
        NameRef::Derived("A".into()),
        SpjNode {
            inputs: vec![QArc::new(NameRef::Class(composer), "x")],
            pred: Expr::path("x", &["works", "instruments", "name"]).eq(Expr::text("flute")),
            out_proj: vec![("name".into(), Expr::path("x", &["name"]))],
        },
    );
    let reference = eval_query_graph(&m.db, &methods, &q).unwrap();
    let stats = DbStats::collect(&m.db);
    let plan = optimize(&m.db, &stats, &q, OptimizerConfig::cost_controlled());
    let mut ex = Executor::new(&mut m.db, &idx, &methods);
    let got = ex.run(&plan.pt).unwrap();
    let mut a = reference.rows.clone();
    let mut b = got.rows.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn reports_semantics_verified() {
    oorq_bench::reports::verify_reports_semantics().expect("report plans are sound");
}
