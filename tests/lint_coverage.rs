//! Lint-code coverage: fixtures that fire each of the analyzer's
//! `AB` diagnostics, plus a meta-test asserting that *every* code in
//! the [`LintCode`] registry is exercised somewhere in the workspace's
//! test code. A code nobody can fire is dead weight in the registry; a
//! code without a test can regress silently.

use oorq::cost::CostParams;
use oorq::datagen::{ChainConfig, ChainDb};
use oorq::optimizer::OptimizerConfig;
use oorq::pt::Pt;
use oorq::query::Expr;
use oorq::storage::DbStats;
use oorq_analysis::{check_observed, dead_columns, Analysis, Analyzer, ObservedFix, ObservedOp};
use oorq_bench::reports::fig7_config;
use oorq_bench::PaperSetup;
use oorq_lint::LintCode;

/// Optimize the Figure-3 query (never-push) and statically analyze the
/// chosen plan — the shared fixture for the observed-counter checks.
fn fig3_analysis() -> Analysis {
    let setup = PaperSetup::new(fig7_config());
    let q = setup.fig3();
    let opt = setup.optimize(&q, OptimizerConfig::never_push());
    let analyzer = Analyzer::new(
        setup.m.db.catalog(),
        setup.m.db.physical(),
        &setup.stats,
        CostParams::default(),
    );
    analyzer.analyze(&opt.pt).expect("fig3 plan analyzes")
}

/// A well-behaved observation for one analyzed node: every counter at
/// its lower bound.
fn ok_op(analysis: &Analysis, pt_node: usize) -> ObservedOp {
    let n = analysis.node(pt_node).expect("node exists");
    ObservedOp {
        pt_node,
        label: n.label.clone(),
        rows_out: n.rows_total.lo.ceil() as u64,
        page_reads: n.data().lo.ceil() as u64,
        page_hits: 0,
        index_reads: n.index().lo.ceil() as u64,
        page_writes: n.writes().lo.ceil() as u64,
    }
}

/// AB001: an observed row count just past the static upper bound is a
/// violation; the same count inside the bound is not.
#[test]
fn ab001_rows_escaping_bound_are_flagged() {
    let analysis = fig3_analysis();
    let n = analysis
        .nodes
        .iter()
        .find(|n| n.lowered && n.rows_total.hi.is_finite())
        .expect("some lowered node has a finite row bound");
    let mut op = ok_op(&analysis, n.pt_node);
    assert!(
        check_observed(&analysis, &[op.clone()], &[]).is_clean(),
        "in-bound observation must be clean"
    );
    op.rows_out = n.rows_total.hi as u64 + 1;
    let report = check_observed(&analysis, &[op], &[]);
    assert!(
        report.has(LintCode::BoundRowsViolated),
        "{}",
        report.render()
    );
}

/// AB002: observed page accesses past the static bound — data pages and
/// index pages each trip the same code.
#[test]
fn ab002_pages_escaping_bound_are_flagged() {
    let analysis = fig3_analysis();
    let n = analysis
        .nodes
        .iter()
        .find(|n| n.lowered && n.data().hi.is_finite())
        .expect("some lowered node has a finite page bound");
    let mut op = ok_op(&analysis, n.pt_node);
    op.page_reads = n.data().hi as u64 + 1;
    op.page_hits = 1;
    let report = check_observed(&analysis, &[op], &[]);
    assert!(
        report.has(LintCode::BoundPagesViolated),
        "{}",
        report.render()
    );
}

/// AB003: a fixpoint that runs more semi-naive passes than the static
/// pass bound (here: past the iteration cap the bound falls back to).
#[test]
fn ab003_fixpoint_passes_escaping_bound_are_flagged() {
    let analysis = fig3_analysis();
    let fx = analysis
        .nodes
        .iter()
        .find(|n| n.passes.is_some())
        .expect("the fig3 plan contains a fixpoint");
    let passes = fx.passes.expect("fixpoint bounds carry a pass interval");
    let observed = ObservedFix {
        pt_node: fx.pt_node,
        iterations: passes.hi as u64 + 1,
    };
    let report = check_observed(&analysis, &[], &[observed]);
    assert!(
        report.has(LintCode::BoundPassesViolated),
        "{}",
        report.render()
    );
    // One pass fewer is certifiable.
    let observed = ObservedFix {
        pt_node: fx.pt_node,
        iterations: passes.hi as u64,
    };
    assert!(check_observed(&analysis, &[], &[observed]).is_clean());
}

/// AB004: a computed projection column no ancestor ever reads is dead
/// work; a plain column rename is not flagged.
#[test]
fn ab004_dead_computed_column_is_flagged() {
    let chain = ChainDb::generate(ChainConfig {
        relations: 1,
        rows: 4,
        domain: 8,
        seed: 0xAB004,
    });
    let r0 = chain
        .db
        .catalog()
        .relation_by_name("R0")
        .expect("chain relation R0");
    let e = chain.db.physical().entities_of_relation(r0)[0];
    let inner = Pt::proj(
        vec![
            ("a".to_string(), Expr::var("x.a")),
            // Computed (a path step, not a rename) and never read above.
            ("dead".to_string(), Expr::path("x", &["b"])),
            // A plain rename is never dead *work*, so never flagged.
            ("alias".to_string(), Expr::var("x.b")),
        ],
        Pt::entity(e, "x"),
    );
    let plan = Pt::proj(vec![("out".to_string(), Expr::var("a"))], inner);
    let report = dead_columns(&plan);
    assert!(
        report.has(LintCode::DeadComputedColumn),
        "{}",
        report.render()
    );
    assert_eq!(report.codes().len(), 1, "only AB004: {}", report.render());
    assert!(report.render().contains("`dead`"));
    assert!(!report.render().contains("`alias`"));
}

/// AB005: the fig3 fixpoint accumulates a string-typed column, so its
/// key space is unbounded and the pass bound falls back to the cap.
#[test]
fn ab005_unbounded_key_space_is_noted() {
    let analysis = fig3_analysis();
    assert!(
        analysis.report.has(LintCode::FixKeySpaceUnbounded),
        "{}",
        analysis.report.render()
    );
}

/// AB005 (negative) + finite-key-space pass bound: a fixpoint whose
/// accumulator holds only object-typed columns has a finite key space,
/// so its pass bound stays below the iteration cap.
#[test]
fn object_only_fixpoint_has_finite_pass_bound() {
    let setup = PaperSetup::new(fig7_config());
    let e = setup.m.db.physical().entities_of_class(setup.m.composer)[0];
    let base = Pt::proj(vec![("o".to_string(), Expr::var("c"))], Pt::entity(e, "c"));
    let rec = Pt::proj(
        vec![("o".to_string(), Expr::var("d.o"))],
        Pt::temp("t", "d"),
    );
    let plan = Pt::fix("t", Pt::union(base, rec));
    let analyzer = Analyzer::new(
        setup.m.db.catalog(),
        setup.m.db.physical(),
        &setup.stats,
        CostParams::default(),
    );
    let analysis = analyzer.analyze(&plan).expect("object-chain fix analyzes");
    assert!(
        !analysis.report.has(LintCode::FixKeySpaceUnbounded),
        "{}",
        analysis.report.render()
    );
    let passes = analysis
        .nodes
        .iter()
        .find_map(|n| n.passes)
        .expect("fixpoint pass bound");
    assert!(passes.hi.is_finite());
    assert!(
        passes.hi < analyzer.config.max_fix_iterations as f64,
        "finite key space must beat the cap: {passes}"
    );
}

/// AB006: a fixpoint whose base leg reads a provably empty relation is
/// provably empty itself — and the empty relation's row bound is the
/// exact `[0, 0]`.
#[test]
fn ab006_provably_empty_fixpoint_is_noted() {
    let chain = ChainDb::generate(ChainConfig {
        relations: 1,
        rows: 0,
        domain: 8,
        seed: 0xAB006,
    });
    let r0 = chain
        .db
        .catalog()
        .relation_by_name("R0")
        .expect("chain relation R0");
    let e = chain.db.physical().entities_of_relation(r0)[0];
    let base = Pt::proj(
        vec![("a".to_string(), Expr::var("x.a"))],
        Pt::entity(e, "x"),
    );
    let rec = Pt::proj(
        vec![("a".to_string(), Expr::var("d.a"))],
        Pt::temp("t", "d"),
    );
    let plan = Pt::fix("t", Pt::union(base, rec));
    let stats = DbStats::collect(&chain.db);
    let analyzer = Analyzer::new(
        chain.db.catalog(),
        chain.db.physical(),
        &stats,
        CostParams::default(),
    );
    let analysis = analyzer.analyze(&plan).expect("empty-base fix analyzes");
    assert!(
        analysis.report.has(LintCode::FixProvablyEmpty),
        "{}",
        analysis.report.render()
    );
    // Int-typed accumulator columns also make this an AB005 case.
    assert!(analysis.report.has(LintCode::FixKeySpaceUnbounded));
    // The empty relation's scan is bounded by the exact zero interval.
    let entity = analysis
        .nodes
        .iter()
        .find(|n| n.label.contains("R0") || n.label.contains("Entity"))
        .expect("entity node analyzed");
    assert_eq!(entity.rows_total.lo, 0.0);
    assert_eq!(entity.rows_total.hi, 0.0);
    assert!(!entity.rows_total.is_degenerate());
}

/// AB007: an observed operator (or fixpoint) with no analyzed PT node
/// means analysis and lowering diverged — certification must fail.
#[test]
fn ab007_unanalyzed_operator_is_flagged() {
    let analysis = fig3_analysis();
    let op = ObservedOp {
        pt_node: analysis.nodes.len() + 7,
        label: "Phantom".to_string(),
        rows_out: 0,
        page_reads: 0,
        page_hits: 0,
        index_reads: 0,
        page_writes: 0,
    };
    let report = check_observed(&analysis, &[op], &[]);
    assert!(
        report.has(LintCode::DegenerateInterval),
        "{}",
        report.render()
    );
    // A fixpoint observation at a non-fixpoint node trips the same code.
    let fx = ObservedFix {
        pt_node: analysis.nodes.len() + 7,
        iterations: 1,
    };
    let report = check_observed(&analysis, &[], &[fx]);
    assert!(
        report.has(LintCode::DegenerateInterval),
        "{}",
        report.render()
    );
}

/// CM002 on a live model: the estimator clamps its own arithmetic, so
/// the non-finite-cost arm is reachable only through corrupt
/// *calibration inputs* — here a NaN fitted page weight poisons every
/// feature product.
#[test]
fn cm002_poisoned_fitted_weights_fire_on_live_model() {
    let setup = PaperSetup::new(fig7_config());
    let mut params = CostParams::default();
    params.weights.seq_page = f64::NAN;
    let model = oorq::cost::CostModel::new(
        setup.m.db.catalog(),
        setup.m.db.physical(),
        &setup.stats,
        params,
    );
    let e = setup.m.db.physical().entities_of_class(setup.m.composer)[0];
    let plan = Pt::sel(
        Expr::path("x", &["name"]).eq(Expr::text("Bach")),
        Pt::entity(e, "x"),
    );
    let report = oorq_lint::lint_plan_cost(&model, &plan);
    assert!(report.has(LintCode::NonFiniteCost), "{}", report.render());
    // The same plan under sane weights is clean.
    let model = oorq::cost::CostModel::new(
        setup.m.db.catalog(),
        setup.m.db.physical(),
        &setup.stats,
        CostParams::default(),
    );
    assert!(oorq_lint::lint_plan_cost(&model, &plan).is_clean());
}

/// Every code in the registry must be exercised by at least one test:
/// its variant (`LintCode::X`) or its stable code string must appear in
/// some test region of the workspace sources. Test regions are files
/// under a `tests/` directory, `tests.rs`/`*_tests.rs` files, and the
/// tail of any source file from its first `#[cfg(test)]` marker.
#[test]
fn every_lint_code_is_exercised_by_some_test() {
    fn collect(dir: &std::path::Path, out: &mut String) {
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(_) => return,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if name != "target" && !name.starts_with('.') {
                    collect(&path, out);
                }
                continue;
            }
            if !name.ends_with(".rs") {
                continue;
            }
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            let in_test_dir = path
                .components()
                .any(|c| c.as_os_str().to_string_lossy() == "tests");
            if in_test_dir || name == "tests.rs" || name.ends_with("_tests.rs") {
                out.push_str(&text);
            } else if let Some(i) = text.find("#[cfg(test)]") {
                out.push_str(&text[i..]);
            }
        }
    }

    let mut tests = String::new();
    collect(std::path::Path::new(env!("CARGO_MANIFEST_DIR")), &mut tests);
    assert!(
        tests.contains("every_lint_code_is_exercised_by_some_test"),
        "the source walk must reach this very file"
    );
    let missing: Vec<&str> = LintCode::all()
        .iter()
        .filter(|c| !tests.contains(&format!("LintCode::{c:?}")) && !tests.contains(c.code()))
        .map(|c| c.code())
        .collect();
    assert!(
        missing.is_empty(),
        "registered lint codes with no exercising test: {missing:?}"
    );
}
