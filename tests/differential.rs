//! Differential tests: the streaming pipeline executor against the
//! naive reference evaluator, on every datagen scenario (music chains,
//! parts BOM, relational chain joins) across seeded PRNG sizes. Each
//! case asserts the result sets are identical and — for recursive
//! queries — that the semi-naive fixpoint converged (a bounded number
//! of delta scans, observed through the per-operator counters).

use std::sync::Arc;

use oorq::cost::{CostModel, CostParams};
use oorq::datagen::{
    parts_catalog, ChainConfig, ChainDb, MusicConfig, MusicDb, PartsConfig, PartsDb,
};
use oorq::exec::{eval_query_graph, ExecConfig, Executor, MethodRegistry};
use oorq::index::{IndexSet, PathIndex, SelectionIndex};
use oorq::optimizer::{Optimizer, OptimizerConfig};
use oorq::query::paper::{influencer_view, music_catalog};
use oorq::query::{Expr, NameRef, QArc, QueryGraph, SpjNode, ViewRegistry};
use oorq::storage::{Database, DbStats};

/// Breaker memory budget for every streaming run (pages), from the
/// `OORQ_MEMORY_BUDGET` environment variable (`0` / unset = unbounded).
/// CI re-runs this whole suite under a low budget to prove spilling
/// breakers return byte-identical answers.
fn env_budget() -> u64 {
    std::env::var("OORQ_MEMORY_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Optimize under the given config, stream the plan, and compare
/// against the (pre-computed, sorted) reference answer. Returns the
/// per-operator reports of the streaming run so callers can assert on
/// counters.
fn diff_one(
    db: &mut Database,
    idx: &IndexSet,
    methods: &MethodRegistry,
    q: &QueryGraph,
    reference: &[Vec<oorq::storage::Value>],
    config: OptimizerConfig,
    label: &str,
) -> Vec<oorq::exec::OpReport> {
    let stats = DbStats::collect(db);
    let model = CostModel::new(db.catalog(), db.physical(), &stats, CostParams::default());
    let plan = Optimizer::new(model, config)
        .optimize(q)
        .unwrap_or_else(|e| panic!("{label}: optimization failed: {e}"));
    let mut ex = Executor::new(db, idx, methods).with_config(ExecConfig {
        memory_budget_pages: env_budget(),
        ..ExecConfig::default()
    });
    let got = ex
        .run(&plan.pt)
        .unwrap_or_else(|e| panic!("{label}: streaming execution failed: {e}"));
    let mut b = got.rows.clone();
    b.sort();
    assert_eq!(
        reference,
        &b[..],
        "{label}: streaming executor diverged from reference"
    );
    ex.report().ops
}

/// Run `diff_one` under both the cost-controlled and the always-push
/// strategies (the two plans that exercise different pipeline shapes),
/// and assert every fixpoint in the plans converged: the rec-side delta
/// scan must open at least once less than the row count bound (semi-
/// naive iterations are bounded by the longest derivation chain).
fn diff_configs(
    db: &mut Database,
    idx: &IndexSet,
    methods: &MethodRegistry,
    q: &QueryGraph,
    label: &str,
    expect_fix: bool,
) {
    // The naive reference is the slow side (cross products); evaluate it
    // once per scenario and compare every strategy's plan against it.
    let mut reference = eval_query_graph(db, methods, q)
        .unwrap_or_else(|e| panic!("{label}: reference failed: {e}"))
        .rows;
    reference.sort();
    for (cname, config) in [
        ("cost-controlled", OptimizerConfig::cost_controlled()),
        ("always-push", OptimizerConfig::deductive_heuristic()),
    ] {
        let ops = diff_one(
            db,
            idx,
            methods,
            q,
            &reference,
            config,
            &format!("{label}/{cname}"),
        );
        let fix_ops: Vec<_> = ops.iter().filter(|o| o.label.starts_with("Fix(")).collect();
        if expect_fix {
            assert!(
                !fix_ops.is_empty(),
                "{label}/{cname}: expected a fixpoint operator in the plan"
            );
        }
        for fix in &fix_ops {
            // The pipeline breaker runs its whole loop inside one open;
            // convergence within the iteration bound is what lets it
            // return Ok at all, and a converged loop opens the delta
            // scan once per productive iteration only.
            assert_eq!(fix.opens, 1, "{label}/{cname}: fixpoint opened once");
        }
        let delta_scans: Vec<_> = ops
            .iter()
            .filter(|o| o.label.starts_with("scan temp "))
            .collect();
        for d in &delta_scans {
            assert!(
                d.opens <= d.rows_in.max(d.rows_out).max(1) + 1,
                "{label}/{cname}: {} delta scans for {} rows — redundant iterations",
                d.opens,
                d.rows_out,
            );
        }
    }
}

fn music_setup(cfg: MusicConfig) -> (MusicDb, IndexSet) {
    let cat = Arc::new(music_catalog());
    let mut m = MusicDb::generate(cat, cfg);
    let mut idx = IndexSet::new();
    idx.add_path(PathIndex::build(
        &mut m.db,
        vec![
            (m.composer, m.works_attr),
            (m.composition, m.instruments_attr),
        ],
    ));
    idx.add_selection(SelectionIndex::build(&mut m.db, m.composer, m.name_attr));
    (m, idx)
}

fn fig3_gen(cat: &oorq::schema::Catalog, gen: i64) -> QueryGraph {
    let influencer = cat.relation_by_name("Influencer").unwrap();
    let mut q = QueryGraph::new(NameRef::Derived("Answer".into()));
    q.add_spj(
        NameRef::Derived("Answer".into()),
        SpjNode {
            inputs: vec![QArc::new(NameRef::Relation(influencer), "i")],
            pred: Expr::path("i", &["master", "works", "instruments", "name"])
                .eq(Expr::text("harpsichord"))
                .and(Expr::path("i", &["gen"]).ge(Expr::int(gen))),
            out_proj: vec![("name".into(), Expr::path("i", &["disciple", "name"]))],
        },
    );
    influencer_view(cat).expand(&mut q, cat).unwrap();
    q
}

#[test]
fn music_scenario_differential_across_seeds() {
    for (seed, chains, chain_len) in [(1u64, 2u32, 4u32), (7, 3, 5), (42, 4, 6)] {
        let (mut m, idx) = music_setup(MusicConfig {
            chains,
            chain_len,
            works_per_composer: 2,
            instruments_per_work: 2,
            harpsichord_fraction: 0.5,
            seed,
            ..Default::default()
        });
        let methods = MethodRegistry::new();
        let cat = m.db.catalog_rc();
        let q = fig3_gen(&cat, 2);
        diff_configs(
            &mut m.db,
            &idx,
            &methods,
            &q,
            &format!("music(seed={seed},chains={chains}x{chain_len})"),
            true,
        );
    }
}

/// The parts BOM query: the recursive `Contains` view over the part
/// hierarchy, filtered to the heavy descendants of one root assembly.
fn parts_query(cat: &oorq::schema::Catalog) -> QueryGraph {
    let part = cat.class_by_name("Part").unwrap();
    let contains = cat.relation_by_name("Contains").unwrap();
    let mut reg = ViewRegistry::new();
    reg.define(
        contains,
        vec![
            SpjNode {
                inputs: vec![
                    QArc::new(NameRef::Class(part), "p"),
                    QArc::new(NameRef::Class(part), "s"),
                ],
                pred: Expr::path("p", &["subparts"]).eq(Expr::var("s")),
                out_proj: vec![
                    ("assembly".into(), Expr::var("p")),
                    ("component".into(), Expr::var("s")),
                    ("depth".into(), Expr::int(1)),
                ],
            },
            SpjNode {
                inputs: vec![
                    QArc::new(NameRef::Relation(contains), "c"),
                    QArc::new(NameRef::Class(part), "s"),
                ],
                pred: Expr::path("c", &["component", "subparts"]).eq(Expr::var("s")),
                out_proj: vec![
                    ("assembly".into(), Expr::path("c", &["assembly"])),
                    ("component".into(), Expr::var("s")),
                    (
                        "depth".into(),
                        Expr::path("c", &["depth"]).add(Expr::int(1)),
                    ),
                ],
            },
        ],
    );
    let mut q = QueryGraph::new(NameRef::Derived("Answer".into()));
    q.add_spj(
        NameRef::Derived("Answer".into()),
        SpjNode {
            inputs: vec![QArc::new(NameRef::Relation(contains), "k")],
            pred: Expr::path("k", &["assembly", "name"])
                .eq(Expr::text("asm0"))
                .and(Expr::path("k", &["component", "weight"]).ge(Expr::int(40))),
            out_proj: vec![
                ("component".into(), Expr::path("k", &["component", "name"])),
                (
                    "cost".into(),
                    Expr::path("k", &["component", "unit_test_cost"]),
                ),
            ],
        },
    );
    reg.expand(&mut q, cat).unwrap();
    q
}

#[test]
fn parts_scenario_differential_across_seeds() {
    for (seed, roots, fanout, depth) in [(1u64, 2u32, 2u32, 3u32), (9, 3, 2, 4), (23, 2, 3, 3)] {
        let cat = Arc::new(parts_catalog());
        let mut p = PartsDb::generate(
            Arc::clone(&cat),
            PartsConfig {
                roots,
                fanout,
                depth,
                seed,
                ..Default::default()
            },
        );
        let q = parts_query(&cat);
        let methods = MethodRegistry::with_parts_methods(&cat);
        let idx = IndexSet::new();
        diff_configs(
            &mut p.db,
            &idx,
            &methods,
            &q,
            &format!("parts(seed={seed},{roots}x{fanout}^{depth})"),
            true,
        );
    }
}

/// Add base + recursive rules for a derived transitive-closure
/// predicate over the Composer master chains. `depth_cap` bounds the
/// recursion (`gen < cap`) so two instances produce distinct delta
/// curves.
fn closure_rules(
    q: &mut QueryGraph,
    name: &str,
    composer: oorq::schema::ClassId,
    depth_cap: Option<i64>,
) {
    let nref = NameRef::Derived(name.into());
    q.add_spj(
        nref.clone(),
        SpjNode {
            inputs: vec![QArc::new(NameRef::Class(composer), "x")],
            pred: Expr::path("x", &["master"]).ne(Expr::Lit(oorq::query::Literal::Null)),
            out_proj: vec![
                ("master".into(), Expr::path("x", &["master"])),
                ("disciple".into(), Expr::var("x")),
                ("gen".into(), Expr::int(1)),
            ],
        },
    );
    let mut pred = Expr::path("i", &["disciple"]).eq(Expr::path("x", &["master"]));
    if let Some(cap) = depth_cap {
        pred = pred.and(Expr::path("i", &["gen"]).lt(Expr::int(cap)));
    }
    q.add_spj(
        nref,
        SpjNode {
            inputs: vec![
                QArc::new(NameRef::Derived(name.into()), "i"),
                QArc::new(NameRef::Class(composer), "x"),
            ],
            pred,
            out_proj: vec![
                ("master".into(), Expr::path("i", &["master"])),
                ("disciple".into(), Expr::var("x")),
                ("gen".into(), Expr::path("i", &["gen"]).add(Expr::int(1))),
            ],
        },
    );
}

/// A plan with two *independent* fixpoints: the full influence closure
/// joined against a depth-capped closure of the same chains. Checks the
/// streaming result against the reference evaluator and — the per-node
/// delta attribution — that the executor reports one delta curve per
/// fixpoint node, each with its own convergence profile.
#[test]
fn two_independent_fixpoints_report_separate_delta_curves() {
    let (mut m, idx) = music_setup(MusicConfig {
        chains: 3,
        chain_len: 5,
        works_per_composer: 2,
        instruments_per_work: 2,
        harpsichord_fraction: 0.5,
        seed: 11,
        ..Default::default()
    });
    let methods = MethodRegistry::new();
    let mut q = QueryGraph::new(NameRef::Derived("Answer".into()));
    q.add_spj(
        NameRef::Derived("Answer".into()),
        SpjNode {
            inputs: vec![
                QArc::new(NameRef::Derived("InfFull".into()), "a"),
                QArc::new(NameRef::Derived("InfCapped".into()), "b"),
            ],
            pred: Expr::path("a", &["disciple"]).eq(Expr::path("b", &["disciple"])),
            out_proj: vec![
                ("name".into(), Expr::path("a", &["disciple", "name"])),
                ("ga".into(), Expr::path("a", &["gen"])),
                ("gb".into(), Expr::path("b", &["gen"])),
            ],
        },
    );
    let composer = m.composer;
    closure_rules(&mut q, "InfFull", composer, None);
    closure_rules(&mut q, "InfCapped", composer, Some(2));
    let mut reference = eval_query_graph(&m.db, &methods, &q).unwrap().rows;
    reference.sort();
    assert!(!reference.is_empty(), "two-fix query must produce rows");

    for (cname, config) in [
        ("cost-controlled", OptimizerConfig::cost_controlled()),
        ("always-push", OptimizerConfig::deductive_heuristic()),
    ] {
        let stats = DbStats::collect(&m.db);
        let model = CostModel::new(
            m.db.catalog(),
            m.db.physical(),
            &stats,
            CostParams::default(),
        );
        let plan = Optimizer::new(model, config).optimize(&q).unwrap();
        let mut ex = Executor::new(&mut m.db, &idx, &methods).with_config(ExecConfig {
            memory_budget_pages: env_budget(),
            ..ExecConfig::default()
        });
        let mut got = ex.run(&plan.pt).unwrap().rows;
        got.sort();
        assert_eq!(reference, got, "two-fix/{cname}: diverged from reference");

        let report = ex.report();
        let mut by_temp: std::collections::BTreeMap<&str, &oorq::exec::FixDeltaCurve> =
            Default::default();
        for c in &report.fix_deltas {
            by_temp.insert(c.temp.as_str(), c);
        }
        assert_eq!(
            by_temp.len(),
            2,
            "two-fix/{cname}: expected one delta curve per fixpoint, got {:?}",
            report.fix_deltas
        );
        let full = by_temp["InfFull"];
        let capped = by_temp["InfCapped"];
        assert_ne!(
            full.pt_node, capped.pt_node,
            "two-fix/{cname}: curves must be keyed to distinct plan nodes"
        );
        for c in [full, capped] {
            assert_eq!(
                c.deltas.last(),
                Some(&0),
                "two-fix/{cname}: {c}: converged curve ends with an empty delta"
            );
            assert!(
                c.deltas[0] > 0,
                "two-fix/{cname}: {c}: seed delta must be non-empty"
            );
        }
        // Full closure: chains of length 5 derive pairs up to gen 4, so
        // the seed plus 3 productive passes plus the empty convergence
        // pass. The capped closure stops deriving at gen 2.
        assert_eq!(full.deltas.len(), 5, "two-fix/{cname}: {full}");
        assert_eq!(capped.deltas.len(), 3, "two-fix/{cname}: {capped}");
        let mass = |c: &oorq::exec::FixDeltaCurve| c.deltas.iter().sum::<u64>();
        assert!(
            mass(full) > mass(capped),
            "two-fix/{cname}: capped closure must derive strictly less ({full} vs {capped})"
        );
    }
}

#[test]
fn chain_scenario_differential_across_seeds() {
    for (seed, relations, rows, domain) in
        [(3u64, 3usize, 30u32, 10i64), (13, 4, 18, 8), (31, 5, 10, 6)]
    {
        let mut chain = ChainDb::generate(ChainConfig {
            relations,
            rows,
            domain,
            seed,
        });
        let q = chain.chain_query(6);
        let methods = MethodRegistry::new();
        let idx = IndexSet::new();
        diff_configs(
            &mut chain.db,
            &idx,
            &methods,
            &q,
            &format!("chain(seed={seed},k={relations})"),
            false,
        );
    }
}
