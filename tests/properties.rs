//! Property-based integration tests: on randomized databases and query
//! parameters, every optimizer configuration produces plans that match
//! the reference evaluator, and the optimality ordering of the search
//! strategies holds.
//!
//! Cases are driven by the in-repo deterministic [`Prng`], so every run
//! explores the same parameter points and failures reproduce exactly.

use std::sync::Arc;

use oorq::cost::{CostModel, CostParams};
use oorq::datagen::{ChainConfig, ChainDb, MusicConfig, MusicDb};
use oorq::exec::{eval_query_graph, Executor, MethodRegistry};
use oorq::index::{IndexSet, PathIndex, SelectionIndex};
use oorq::optimizer::{Optimizer, OptimizerConfig, SpjStrategy};
use oorq::query::paper::{influencer_view, music_catalog};
use oorq::query::{Expr, NameRef, QArc, QueryGraph, SpjNode};
use oorq::storage::DbStats;
use oorq_prng::Prng;

fn music(chains: u32, len: u32, works: u32, fraction: f64, seed: u64) -> (MusicDb, IndexSet) {
    let cat = Arc::new(music_catalog());
    let mut m = MusicDb::generate(
        cat,
        MusicConfig {
            chains,
            chain_len: len,
            works_per_composer: works,
            instruments_per_work: 2,
            harpsichord_fraction: fraction,
            seed,
            ..Default::default()
        },
    );
    let mut idx = IndexSet::new();
    idx.add_path(PathIndex::build(
        &mut m.db,
        vec![
            (m.composer, m.works_attr),
            (m.composition, m.instruments_attr),
        ],
    ));
    idx.add_selection(SelectionIndex::build(&mut m.db, m.composer, m.name_attr));
    (m, idx)
}

fn influenced(cat: &oorq::schema::Catalog, gen: i64, instrument: &str) -> QueryGraph {
    let influencer = cat.relation_by_name("Influencer").unwrap();
    let mut q = QueryGraph::new(NameRef::Derived("Answer".into()));
    q.add_spj(
        NameRef::Derived("Answer".into()),
        SpjNode {
            inputs: vec![QArc::new(NameRef::Relation(influencer), "i")],
            pred: Expr::path("i", &["master", "works", "instruments", "name"])
                .eq(Expr::text(instrument))
                .and(Expr::path("i", &["gen"]).ge(Expr::int(gen))),
            out_proj: vec![
                ("name".into(), Expr::path("i", &["disciple", "name"])),
                ("gen".into(), Expr::path("i", &["gen"])),
            ],
        },
    );
    influencer_view(cat).expand(&mut q, cat).unwrap();
    q
}

/// Optimized plans preserve query semantics on random databases and
/// filter parameters, pushed or not.
#[test]
fn optimizer_preserves_semantics() {
    let mut rng = Prng::new(0x0011_aa01);
    for case in 0..8 {
        let chains = rng.range_u32(1, 4);
        let len = rng.range_u32(2, 6);
        let works = rng.range_u32(1, 3);
        let fraction = rng.f64();
        let seed = rng.below(1000);
        let gen = rng.range_i64(1, 4);
        let instrument = ["harpsichord", "flute", "instrument2"][rng.index(3)];
        let (mut m, idx) = music(chains, len, works, fraction, seed);
        let cat = m.db.catalog_rc();
        let q = influenced(&cat, gen, instrument);
        let methods = MethodRegistry::new();
        let reference = eval_query_graph(&m.db, &methods, &q).unwrap();
        let stats = DbStats::collect(&m.db);
        for config in [
            OptimizerConfig::cost_controlled(),
            OptimizerConfig::deductive_heuristic(),
            OptimizerConfig::never_push(),
        ] {
            let plan = {
                let model = CostModel::new(
                    m.db.catalog(),
                    m.db.physical(),
                    &stats,
                    CostParams::default(),
                );
                Optimizer::new(model, config.clone()).optimize(&q).unwrap()
            };
            let mut ex = Executor::new(&mut m.db, &idx, &methods);
            let got = ex.run(&plan.pt).unwrap();
            let mut a = reference.rows.clone();
            let mut b = got.rows.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "case {case}: {config:?} diverged");
        }
    }
}

/// Exhaustive enumeration never loses to DP or greedy (estimated
/// cost), and all three agree with the reference on answers.
#[test]
fn strategy_optimality_ordering() {
    let mut rng = Prng::new(0x0011_aa02);
    for case in 0..8 {
        let relations = 2 + rng.index(2);
        let rows = rng.range_u32(10, 25);
        let domain = rng.range_i64(5, 20);
        let seed = rng.below(1000);
        let limit = rng.range_i64(1, 10);
        let mut chain = ChainDb::generate(ChainConfig {
            relations,
            rows,
            domain,
            seed,
        });
        let q = chain.chain_query(limit);
        let stats = DbStats::collect(&chain.db);
        let params = CostParams::default();
        let mut costs = Vec::new();
        let methods = MethodRegistry::new();
        let reference = eval_query_graph(&chain.db, &methods, &q).unwrap();
        for strategy in [
            SpjStrategy::Exhaustive,
            SpjStrategy::Dp,
            SpjStrategy::Greedy,
        ] {
            let plan = {
                let model = CostModel::new(
                    chain.db.catalog(),
                    chain.db.physical(),
                    &stats,
                    params.clone(),
                );
                Optimizer::new(
                    model,
                    OptimizerConfig {
                        spj_strategy: strategy,
                        rand: None,
                        ..Default::default()
                    },
                )
                .optimize(&q)
                .unwrap()
            };
            costs.push(plan.cost.total(&params));
            let idx = IndexSet::new();
            let mut ex = Executor::new(&mut chain.db, &idx, &methods);
            let got = ex.run(&plan.pt).unwrap();
            let mut a = reference.rows.clone();
            let mut b = got.rows.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "case {case}: {strategy:?} diverged");
        }
        assert!(
            costs[0] <= costs[1] + 1e-6,
            "case {case}: exhaustive {} > dp {}",
            costs[0],
            costs[1]
        );
        assert!(
            costs[0] <= costs[2] + 1e-6,
            "case {case}: exhaustive {} > greedy {}",
            costs[0],
            costs[2]
        );
    }
}

/// Cost estimates are finite, non-negative, and monotone in database
/// cardinality for the fixpoint query.
#[test]
fn cost_is_sane_and_monotone() {
    let mut rng = Prng::new(0x0011_aa03);
    for case in 0..8 {
        let seed = rng.below(500);
        let (small, _) = music(2, 3, 2, 0.5, seed);
        let (large, _) = music(6, 6, 2, 0.5, seed);
        let cat = small.db.catalog_rc();
        let q = influenced(&cat, 2, "harpsichord");
        let mut totals = Vec::new();
        for m in [&small, &large] {
            let stats = DbStats::collect(&m.db);
            let model = CostModel::new(
                m.db.catalog(),
                m.db.physical(),
                &stats,
                CostParams::default(),
            );
            let plan = Optimizer::new(model, OptimizerConfig::never_push())
                .optimize(&q)
                .unwrap();
            let t = plan.cost.total(&CostParams::default());
            assert!(t.is_finite() && t >= 0.0, "case {case}");
            totals.push(t);
        }
        assert!(
            totals[1] > totals[0],
            "case {case}: larger database must cost more: {} vs {}",
            totals[1],
            totals[0]
        );
    }
}
