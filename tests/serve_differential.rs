//! Serving-layer differential tests: N concurrent sessions over shared
//! copy-on-write snapshots must return answers byte-identical to a
//! single-session replay, the plan cache must show the warm/cold
//! counter pattern, and stale statistics must trip the CX drift lints
//! into eviction + recalibration. The whole suite honours
//! `OORQ_MEMORY_BUDGET` (CI re-runs it under a low budget to prove
//! spilling sessions still serve identical answers).

use std::sync::Arc;

use oorq::datagen::{ChainConfig, ChainDb, MusicConfig, MusicDb};
use oorq::exec::{ExecConfig, MethodRegistry};
use oorq::index::{IndexSet, PathIndex, SelectionIndex};
use oorq::query::paper::{fig3_query, influencer_view, music_catalog};
use oorq::query::QueryGraph;
use oorq::serve::{CacheOutcome, Server, ServerConfig};
use oorq::storage::{DbStats, Value};

/// Breaker memory budget (pages) from `OORQ_MEMORY_BUDGET` (`0` / unset
/// = unbounded).
fn env_budget() -> u64 {
    std::env::var("OORQ_MEMORY_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn config() -> ServerConfig {
    ServerConfig {
        exec: ExecConfig {
            memory_budget_pages: env_budget(),
            ..ExecConfig::default()
        },
        ..ServerConfig::default()
    }
}

/// The paper's music database with its physical design, plus the
/// Figure 3 query (view expanded).
fn music_server() -> (Server, QueryGraph) {
    let cat = Arc::new(music_catalog());
    let mut m = MusicDb::generate(
        Arc::clone(&cat),
        MusicConfig {
            chains: 6,
            chain_len: 8,
            works_per_composer: 3,
            instruments_per_work: 3,
            instrument_pool: 12,
            harpsichord_fraction: 0.25,
            clustered: false,
            buffer_frames: 32,
            seed: 42,
        },
    );
    let mut idx = IndexSet::new();
    idx.add_path(PathIndex::build(
        &mut m.db,
        vec![
            (m.composer, m.works_attr),
            (m.composition, m.instruments_attr),
        ],
    ));
    idx.add_selection(SelectionIndex::build(&mut m.db, m.composer, m.name_attr));
    let mut q = fig3_query(&cat);
    influencer_view(&cat).expand(&mut q, &cat).unwrap();
    (Server::new(m.db, idx, MethodRegistry::new(), config()), q)
}

fn chain_server(rows: u32) -> (Server, Vec<QueryGraph>) {
    let chain = ChainDb::generate(ChainConfig {
        relations: 3,
        rows,
        domain: 16,
        seed: 9,
    });
    let queries = vec![
        chain.chain_query(4),
        chain.chain_query(10),
        chain.selective_tail_query(3),
    ];
    (
        Server::new(chain.db, IndexSet::new(), MethodRegistry::new(), config()),
        queries,
    )
}

fn rendered(rows: &[Vec<Value>]) -> Vec<String> {
    rows.iter().map(|r| format!("{r:?}")).collect()
}

#[test]
fn concurrent_music_sessions_match_single_session_replay() {
    let (server, q) = music_server();
    let reference = {
        let mut s = server.session();
        rendered(&s.execute(&q).unwrap().batch.rows)
    };
    assert!(!reference.is_empty(), "fig3 must have an answer");

    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let mut s = server.session();
                for _ in 0..3 {
                    let got = s.execute(&q).unwrap();
                    assert_eq!(
                        rendered(&got.batch.rows),
                        reference,
                        "concurrent session diverged from single-session replay"
                    );
                }
            });
        }
    });

    let m = server.metrics();
    assert_eq!(m.counter("serve.sessions").get(), 5);
    assert_eq!(m.counter("serve.queries").get(), 13);
    // One cold optimization; every other request hit the shared cache.
    assert_eq!(m.counter("serve.cache.misses").get(), 1);
    assert_eq!(m.counter("serve.cache.hits").get(), 12);
}

#[test]
fn concurrent_chain_sessions_match_single_session_replay() {
    let (server, queries) = chain_server(100);
    let reference: Vec<Vec<String>> = {
        let mut s = server.session();
        queries
            .iter()
            .map(|q| rendered(&s.execute(q).unwrap().batch.rows))
            .collect()
    };

    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let mut s = server.session();
                for _round in 0..2 {
                    for (q, want) in queries.iter().zip(&reference) {
                        let got = s.execute(q).unwrap();
                        assert_eq!(&rendered(&got.batch.rows), want);
                    }
                }
            });
        }
    });

    let m = server.metrics();
    assert_eq!(m.counter("serve.queries").get(), 3 + 4 * 2 * 3);
    assert!(m.counter("serve.cache.hits").get() >= 3 + 4 * 2 * 3 - 2 * 3);
}

#[test]
fn warm_cold_pattern_over_the_music_corpus() {
    let (server, q) = music_server();
    let mut s = server.session();
    let cold = s.execute(&q).unwrap();
    assert_eq!(cold.cache, CacheOutcome::Miss);
    assert!(!cold.invalidated, "fresh statistics must not drift");
    let warm = s.execute(&q).unwrap();
    assert_eq!(warm.cache, CacheOutcome::Hit);
    assert_eq!(cold.plan_fingerprint, warm.plan_fingerprint);
    assert_eq!(rendered(&cold.batch.rows), rendered(&warm.batch.rows));
    assert_eq!(server.cached_plans(), 1);
}

#[test]
fn stale_statistics_trip_drift_eviction_and_recalibration() {
    let (server, queries) = chain_server(120);
    // Statistics from a near-empty twin: the stale-checkpoint case.
    let tiny = ChainDb::generate(ChainConfig {
        relations: 3,
        rows: 2,
        domain: 16,
        seed: 9,
    });
    server.install_stats(DbStats::collect(&tiny.db));

    let q = &queries[1];
    let mut s = server.session();
    let a1 = s.execute(q).unwrap();
    assert_eq!(a1.cache, CacheOutcome::Miss);
    assert!(
        a1.invalidated,
        "stale statistics must trip the CX drift lints"
    );
    assert_eq!(server.cached_plans(), 0, "drifted entry must be evicted");
    assert_eq!(
        server.metrics().counter("serve.cache.invalidations").get(),
        1
    );
    assert_eq!(server.metrics().counter("serve.recalibrations").get(), 1);

    // Re-optimized under recalibrated statistics: clean and cached.
    let a2 = s.execute(q).unwrap();
    assert_eq!(a2.cache, CacheOutcome::Miss);
    assert!(!a2.invalidated);
    assert_eq!(server.cached_plans(), 1);
    let a3 = s.execute(q).unwrap();
    assert_eq!(a3.cache, CacheOutcome::Hit);

    // Invalidation is about cost honesty, never about answers.
    assert_eq!(rendered(&a1.batch.rows), rendered(&a2.batch.rows));
    assert_eq!(rendered(&a1.batch.rows), rendered(&a3.batch.rows));
}
