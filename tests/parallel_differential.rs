//! Parallel-execution differential tests: every scenario (music chains,
//! parts BOM, relational chain joins) under both push strategies must
//! produce *byte-identical* answers — same rows, same order — whether
//! the plan's parallel operators drain inline (1 worker) or fork onto a
//! pool of 2 or 4 workers. This is the exchange operators' determinism
//! contract: page-granular partitioning plus worker-order concatenation
//! reproduces the exact serial row order, so even order-sensitive
//! consumers cannot observe the degree of parallelism.

use std::sync::Arc;

use oorq::cost::{CostModel, CostParams, ParallelParams};
use oorq::datagen::{
    parts_catalog, ChainConfig, ChainDb, MusicConfig, MusicDb, PartsConfig, PartsDb,
};
use oorq::exec::{ExecConfig, Executor, MethodRegistry};
use oorq::index::{IndexSet, PathIndex, SelectionIndex};
use oorq::optimizer::{Optimizer, OptimizerConfig};
use oorq::query::paper::{influencer_view, music_catalog};
use oorq::query::{Expr, NameRef, QArc, QueryGraph, SpjNode, ViewRegistry};
use oorq::storage::{Database, DbStats};
use oorq_prng::Prng;

/// Breaker memory budget for every run (pages), from the
/// `OORQ_MEMORY_BUDGET` environment variable (`0` / unset = unbounded).
/// CI re-runs this suite under a low budget: the determinism contract
/// must survive spilling breakers on every lane.
fn env_budget() -> u64 {
    std::env::var("OORQ_MEMORY_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Optimize once with a 4-worker budget, take the serial answer as the
/// reference, then replay the *same* parallel spec under pools of 1, 2
/// and 4 workers and demand row-for-row, in-order identity. Returns
/// whether the optimizer placed any parallel operator at all, so
/// callers can assert the suite is not vacuously serial.
fn parallel_identity(
    db: &mut Database,
    idx: &IndexSet,
    methods: &MethodRegistry,
    q: &QueryGraph,
    config: OptimizerConfig,
    label: &str,
) -> bool {
    let stats = DbStats::collect(db);
    let model = CostModel::new(db.catalog(), db.physical(), &stats, CostParams::default());
    let plan = Optimizer::new(
        model,
        OptimizerConfig {
            threads: 4,
            ..config
        },
    )
    .optimize(q)
    .unwrap_or_else(|e| panic!("{label}: optimization failed: {e}"));

    let reference = {
        let mut ex = Executor::new(db, idx, methods).with_config(ExecConfig {
            memory_budget_pages: env_budget(),
            ..ExecConfig::default()
        });
        ex.run(&plan.pt)
            .unwrap_or_else(|e| panic!("{label}: serial execution failed: {e}"))
            .rows
    };

    for workers in [1u32, 2, 4] {
        let mut ex = Executor::new(db, idx, methods)
            .with_config(ExecConfig {
                threads: workers,
                memory_budget_pages: env_budget(),
                ..ExecConfig::default()
            })
            .with_parallel(plan.parallel.clone());
        let got = ex
            .run(&plan.pt)
            .unwrap_or_else(|e| panic!("{label}/{workers}w: parallel execution failed: {e}"))
            .rows;
        assert_eq!(
            reference, got,
            "{label}/{workers}w: parallel answer deviated from the serial one"
        );
    }
    !plan.parallel.is_empty()
}

/// Run the identity check under both push strategies with zero-overhead
/// parallel cost parameters (so placement is limited only by
/// eligibility, maximizing the exercised exchange/merge shapes).
fn parallel_identity_both(
    db: &mut Database,
    idx: &IndexSet,
    methods: &MethodRegistry,
    q: &QueryGraph,
    label: &str,
) -> bool {
    let free = ParallelParams {
        startup: 0.0,
        merge_per_row: 0.0,
        efficiency: 1.0,
    };
    let mut placed = false;
    for (cname, config) in [
        ("cost-controlled", OptimizerConfig::cost_controlled()),
        ("always-push", OptimizerConfig::deductive_heuristic()),
    ] {
        placed |= parallel_identity(
            db,
            idx,
            methods,
            q,
            OptimizerConfig {
                parallel: free,
                ..config
            },
            &format!("{label}/{cname}"),
        );
    }
    placed
}

fn music_setup(cfg: MusicConfig) -> (MusicDb, IndexSet) {
    let cat = Arc::new(music_catalog());
    let mut m = MusicDb::generate(cat, cfg);
    let mut idx = IndexSet::new();
    idx.add_path(PathIndex::build(
        &mut m.db,
        vec![
            (m.composer, m.works_attr),
            (m.composition, m.instruments_attr),
        ],
    ));
    idx.add_selection(SelectionIndex::build(&mut m.db, m.composer, m.name_attr));
    (m, idx)
}

fn fig3_gen(cat: &oorq::schema::Catalog, gen: i64) -> QueryGraph {
    let influencer = cat.relation_by_name("Influencer").unwrap();
    let mut q = QueryGraph::new(NameRef::Derived("Answer".into()));
    q.add_spj(
        NameRef::Derived("Answer".into()),
        SpjNode {
            inputs: vec![QArc::new(NameRef::Relation(influencer), "i")],
            pred: Expr::path("i", &["master", "works", "instruments", "name"])
                .eq(Expr::text("harpsichord"))
                .and(Expr::path("i", &["gen"]).ge(Expr::int(gen))),
            out_proj: vec![("name".into(), Expr::path("i", &["disciple", "name"]))],
        },
    );
    influencer_view(cat).expand(&mut q, cat).unwrap();
    q
}

#[test]
fn music_parallel_identical_to_serial() {
    let mut placed = false;
    for (seed, chains, chain_len) in [(1u64, 3u32, 5u32), (42, 4, 6)] {
        let (mut m, idx) = music_setup(MusicConfig {
            chains,
            chain_len,
            works_per_composer: 2,
            instruments_per_work: 2,
            harpsichord_fraction: 0.5,
            seed,
            ..Default::default()
        });
        let methods = MethodRegistry::new();
        let cat = m.db.catalog_rc();
        let q = fig3_gen(&cat, 2);
        placed |= parallel_identity_both(
            &mut m.db,
            &idx,
            &methods,
            &q,
            &format!("music(seed={seed},chains={chains}x{chain_len})"),
        );
    }
    assert!(
        placed,
        "music: no plan placed a parallel operator — suite is vacuous"
    );
}

/// The parts BOM query: the recursive `Contains` view over the part
/// hierarchy, filtered to the heavy descendants of one root assembly.
fn parts_query(cat: &oorq::schema::Catalog) -> QueryGraph {
    let part = cat.class_by_name("Part").unwrap();
    let contains = cat.relation_by_name("Contains").unwrap();
    let mut reg = ViewRegistry::new();
    reg.define(
        contains,
        vec![
            SpjNode {
                inputs: vec![
                    QArc::new(NameRef::Class(part), "p"),
                    QArc::new(NameRef::Class(part), "s"),
                ],
                pred: Expr::path("p", &["subparts"]).eq(Expr::var("s")),
                out_proj: vec![
                    ("assembly".into(), Expr::var("p")),
                    ("component".into(), Expr::var("s")),
                    ("depth".into(), Expr::int(1)),
                ],
            },
            SpjNode {
                inputs: vec![
                    QArc::new(NameRef::Relation(contains), "c"),
                    QArc::new(NameRef::Class(part), "s"),
                ],
                pred: Expr::path("c", &["component", "subparts"]).eq(Expr::var("s")),
                out_proj: vec![
                    ("assembly".into(), Expr::path("c", &["assembly"])),
                    ("component".into(), Expr::var("s")),
                    (
                        "depth".into(),
                        Expr::path("c", &["depth"]).add(Expr::int(1)),
                    ),
                ],
            },
        ],
    );
    let mut q = QueryGraph::new(NameRef::Derived("Answer".into()));
    q.add_spj(
        NameRef::Derived("Answer".into()),
        SpjNode {
            inputs: vec![QArc::new(NameRef::Relation(contains), "k")],
            pred: Expr::path("k", &["assembly", "name"])
                .eq(Expr::text("asm0"))
                .and(Expr::path("k", &["component", "weight"]).ge(Expr::int(40))),
            out_proj: vec![
                ("component".into(), Expr::path("k", &["component", "name"])),
                (
                    "cost".into(),
                    Expr::path("k", &["component", "unit_test_cost"]),
                ),
            ],
        },
    );
    reg.expand(&mut q, cat).unwrap();
    q
}

#[test]
fn parts_parallel_identical_to_serial() {
    let mut placed = false;
    for (seed, roots, fanout, depth) in [(9u64, 3u32, 2u32, 4u32), (23, 2, 3, 3)] {
        let cat = Arc::new(parts_catalog());
        let mut p = PartsDb::generate(
            Arc::clone(&cat),
            PartsConfig {
                roots,
                fanout,
                depth,
                seed,
                ..Default::default()
            },
        );
        let q = parts_query(&cat);
        let methods = MethodRegistry::with_parts_methods(&cat);
        let idx = IndexSet::new();
        placed |= parallel_identity_both(
            &mut p.db,
            &idx,
            &methods,
            &q,
            &format!("parts(seed={seed},{roots}x{fanout}^{depth})"),
        );
    }
    assert!(
        placed,
        "parts: no plan placed a parallel operator — suite is vacuous"
    );
}

#[test]
fn chain_parallel_identical_to_serial() {
    let mut placed = false;
    for (seed, relations, rows, domain) in [(3u64, 2usize, 120u32, 16i64), (13, 3, 40, 10)] {
        let mut chain = ChainDb::generate(ChainConfig {
            relations,
            rows,
            domain,
            seed,
        });
        let q = chain.chain_query(domain / 2);
        let methods = MethodRegistry::new();
        let idx = IndexSet::new();
        placed |= parallel_identity_both(
            &mut chain.db,
            &idx,
            &methods,
            &q,
            &format!("chain(seed={seed},k={relations})"),
        );
    }
    assert!(
        placed,
        "chain: no plan placed a parallel operator — suite is vacuous"
    );
}

/// Seeded stress: random database shapes, random worker budgets, both
/// strategies — a cheap fuzz of the determinism contract over plan
/// shapes no hand-picked scenario covers. The PRNG is the repo's own
/// seeded generator, so a failure reproduces from the printed label.
#[test]
fn seeded_parallel_stress() {
    let mut rng = Prng::new(0x9a7a_11e1);
    for round in 0..6 {
        if rng.chance(0.5) {
            let chains = rng.range_u32(2, 5);
            let chain_len = rng.range_u32(3, 6);
            let seed = rng.next_u64();
            let (mut m, idx) = music_setup(MusicConfig {
                chains,
                chain_len,
                works_per_composer: rng.range_u32(1, 3),
                instruments_per_work: rng.range_u32(1, 3),
                harpsichord_fraction: rng.f64(),
                seed,
                ..Default::default()
            });
            let methods = MethodRegistry::new();
            let cat = m.db.catalog_rc();
            let q = fig3_gen(&cat, rng.range_i64(1, 3));
            parallel_identity_both(
                &mut m.db,
                &idx,
                &methods,
                &q,
                &format!("stress[{round}]/music(seed={seed:#x},{chains}x{chain_len})"),
            );
        } else {
            let relations = rng.index(2) + 2;
            let rows = rng.range_u32(20, 90);
            let domain = rng.range_i64(6, 20);
            let seed = rng.next_u64();
            let mut chain = ChainDb::generate(ChainConfig {
                relations,
                rows,
                domain,
                seed,
            });
            let q = chain.chain_query(rng.range_i64(2, domain));
            let methods = MethodRegistry::new();
            let idx = IndexSet::new();
            parallel_identity_both(
                &mut chain.db,
                &idx,
                &methods,
                &q,
                &format!("stress[{round}]/chain(seed={seed:#x},k={relations},n={rows})"),
            );
        }
    }
}
