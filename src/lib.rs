//! Facade crate re-exporting the whole OORQ public API.
//!
//! See the individual crates for details:
//! [`oorq_schema`], [`oorq_storage`], [`oorq_index`], [`oorq_query`],
//! [`oorq_pt`], [`oorq_cost`], [`oorq_exec`], [`oorq_core`],
//! [`oorq_datagen`], [`oorq_analysis`], [`oorq_lint`], [`oorq_obs`],
//! [`oorq_serve`].
pub use oorq_analysis as analysis;
pub use oorq_core as optimizer;
pub use oorq_cost as cost;
pub use oorq_datagen as datagen;
pub use oorq_exec as exec;
pub use oorq_index as index;
pub use oorq_lint as lint;
pub use oorq_obs as obs;
pub use oorq_pt as pt;
pub use oorq_query as query;
pub use oorq_schema as schema;
pub use oorq_serve as serve;
pub use oorq_storage as storage;
