//! The paper's running example, end to end: the Figure 3 query and the
//! §4.5 push-join query, optimized under every strategy and executed —
//! showing when pushing through recursion wins and when it loses.
//!
//! Run with: `cargo run --release --example music_influencers`

use std::sync::Arc;

use oorq::cost::{CostModel, CostParams};
use oorq::datagen::{MusicConfig, MusicDb};
use oorq::exec::{Executor, MethodRegistry};
use oorq::index::{IndexSet, PathIndex, SelectionIndex};
use oorq::optimizer::{Optimizer, OptimizerConfig};
use oorq::query::paper::{influencer_view, music_catalog, sec45_pushjoin_query};
use oorq::query::{Expr, NameRef, QArc, QueryGraph, SpjNode};
use oorq::storage::DbStats;

/// Figure 3 with a configurable generation bound and filter instrument.
fn influenced_query(catalog: &oorq::schema::Catalog, gen: i64) -> QueryGraph {
    let influencer = catalog
        .relation_by_name("Influencer")
        .expect("music schema");
    let mut q = QueryGraph::new(NameRef::Derived("Answer".into()));
    q.add_spj(
        NameRef::Derived("Answer".into()),
        SpjNode {
            inputs: vec![QArc::new(NameRef::Relation(influencer), "i")],
            pred: Expr::path("i", &["master", "works", "instruments", "name"])
                .eq(Expr::text("harpsichord"))
                .and(Expr::path("i", &["gen"]).ge(Expr::int(gen))),
            out_proj: vec![("name".into(), Expr::path("i", &["disciple", "name"]))],
        },
    );
    influencer_view(catalog)
        .expand(&mut q, catalog)
        .expect("view registered");
    q
}

fn run_one(
    label: &str,
    music: &mut MusicDb,
    indexes: &IndexSet,
    q: &QueryGraph,
    config: OptimizerConfig,
) {
    let stats = DbStats::collect(&music.db);
    let model = CostModel::new(
        music.db.catalog(),
        music.db.physical(),
        &stats,
        CostParams::default(),
    );
    let plan = Optimizer::new(model, config)
        .optimize(q)
        .expect("optimizes");
    let methods = MethodRegistry::new();
    music.db.cold_cache();
    let mut ex = Executor::new(&mut music.db, indexes, &methods);
    let answer = ex.run(&plan.pt).expect("executes");
    let r = ex.report();
    println!(
        "  {label:<18} est {:>8.0}   measured {:>8.0}   ({} rows)",
        plan.cost.total(&CostParams::default()),
        r.total(1.0, 0.05),
        answer.len()
    );
}

fn main() {
    let catalog = Arc::new(music_catalog());
    let mut music = MusicDb::generate(
        Arc::clone(&catalog),
        MusicConfig {
            chains: 10,
            chain_len: 10,
            works_per_composer: 4,
            instruments_per_work: 3,
            harpsichord_fraction: 0.25,
            ..Default::default()
        },
    );
    let mut indexes = IndexSet::new();
    indexes.add_path(PathIndex::build(
        &mut music.db,
        vec![
            (music.composer, music.works_attr),
            (music.composition, music.instruments_attr),
        ],
    ));
    indexes.add_selection(SelectionIndex::build(
        &mut music.db,
        music.composer,
        music.name_attr,
    ));

    println!("Figure 3 (selection on the master's instruments, gen >= 3):");
    let q = influenced_query(&catalog, 3);
    run_one(
        "never push",
        &mut music,
        &indexes,
        &q,
        OptimizerConfig::never_push(),
    );
    run_one(
        "always push",
        &mut music,
        &indexes,
        &q,
        OptimizerConfig::deductive_heuristic(),
    );
    run_one(
        "cost-controlled",
        &mut music,
        &indexes,
        &q,
        OptimizerConfig::cost_controlled(),
    );

    println!("\n§4.5 (composers influenced by the masters of Bach — very selective join):");
    let qj = {
        let mut qj = sec45_pushjoin_query(&catalog);
        influencer_view(&catalog)
            .expand(&mut qj, &catalog)
            .expect("view registered");
        qj
    };
    run_one(
        "never push",
        &mut music,
        &indexes,
        &qj,
        OptimizerConfig::never_push(),
    );
    run_one(
        "always push",
        &mut music,
        &indexes,
        &qj,
        OptimizerConfig::deductive_heuristic(),
    );
    run_one(
        "cost-controlled",
        &mut music,
        &indexes,
        &qj,
        OptimizerConfig::cost_controlled(),
    );

    println!(
        "\nThe point of the paper: neither heuristic is right in general — \
         the cost-controlled strategy matches the better plan in both regimes."
    );
}
