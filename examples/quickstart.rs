//! Quickstart: define a schema, load objects, ask a recursive query,
//! optimize it cost-controlled, and execute the plan.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use oorq::cost::{CostModel, CostParams};
use oorq::datagen::{MusicConfig, MusicDb};
use oorq::exec::{Executor, MethodRegistry};
use oorq::index::{IndexSet, PathIndex, SelectionIndex};
use oorq::optimizer::{Optimizer, OptimizerConfig};
use oorq::query::paper::{influencer_view, music_catalog};
use oorq::query::{Expr, NameRef, QArc, QueryGraph, SpjNode};
use oorq::storage::DbStats;

fn main() {
    // 1. The conceptual schema (the paper's Figure 1): Person, Composer
    //    isa Person, Composition, Instrument, and the recursive
    //    Influencer view.
    let catalog = Arc::new(music_catalog());
    println!(
        "schema: {} classes, {} relations/views",
        catalog.classes().len(),
        catalog.relations().len()
    );

    // 2. A synthetic object base: 8 master-chains of 8 composers, with
    //    nested works and instruments, physically scattered (unclustered).
    let mut music = MusicDb::generate(
        Arc::clone(&catalog),
        MusicConfig {
            chains: 8,
            chain_len: 8,
            harpsichord_fraction: 0.3,
            ..Default::default()
        },
    );
    println!("loaded {} composers", music.composer_count());

    // 3. The physical design: a Maier–Stein path index on
    //    works.instruments and a B+-tree on Composer.name.
    let mut indexes = IndexSet::new();
    indexes.add_path(PathIndex::build(
        &mut music.db,
        vec![
            (music.composer, music.works_attr),
            (music.composition, music.instruments_attr),
        ],
    ));
    indexes.add_selection(SelectionIndex::build(
        &mut music.db,
        music.composer,
        music.name_attr,
    ));

    // 4. A recursive query: "names of composers influenced — over at
    //    least 3 generations — by composers for harpsichord".
    let influencer = catalog
        .relation_by_name("Influencer")
        .expect("declared in the schema");
    let mut query = QueryGraph::new(NameRef::Derived("Answer".into()));
    query.add_spj(
        NameRef::Derived("Answer".into()),
        SpjNode {
            inputs: vec![QArc::new(NameRef::Relation(influencer), "i")],
            pred: Expr::path("i", &["master", "works", "instruments", "name"])
                .eq(Expr::text("harpsichord"))
                .and(Expr::path("i", &["gen"]).ge(Expr::int(3))),
            out_proj: vec![("name".into(), Expr::path("i", &["disciple", "name"]))],
        },
    );
    influencer_view(&catalog)
        .expand(&mut query, &catalog)
        .expect("view registered");
    println!("\nquery graph:\n{}", query.display(&catalog));

    // 5. Optimize with the paper's cost-controlled strategy: the decision
    //    of pushing the harpsichord selection through the recursion is
    //    taken by comparing complete-plan costs, not by heuristic.
    let stats = DbStats::collect(&music.db);
    let model = CostModel::new(
        music.db.catalog(),
        music.db.physical(),
        &stats,
        CostParams::default(),
    );
    let mut optimizer = Optimizer::new(model, OptimizerConfig::cost_controlled());
    let plan = optimizer.optimize(&query).expect("query optimizes");
    drop(optimizer);
    println!(
        "\nchosen plan (estimated cost {:.0} io + {:.0} cpu):",
        plan.cost.cost.io, plan.cost.cost.cpu
    );
    let env = oorq::pt::PtEnv {
        catalog: music.db.catalog(),
        physical: music.db.physical(),
        temp_fields: [("Influencer".to_string(), music.influencer_fields())]
            .into_iter()
            .collect(),
    };
    println!("  {}", plan.pt.display(&env));
    println!(
        "\noptimization trace (the paper's Figure 6):\n{}",
        plan.trace.summary()
    );

    // 6. Execute with honest page-I/O accounting.
    let methods = MethodRegistry::with_music_methods(music.db.catalog());
    music.db.cold_cache();
    let mut executor = Executor::new(&mut music.db, &indexes, &methods);
    let answer = executor.run(&plan.pt).expect("plan executes");
    let report = executor.report();
    println!(
        "answer: {} composers; measured {} page reads, {} index reads, {} evaluations",
        answer.len(),
        report.io.page_reads,
        report.io.index_reads,
        report.evals
    );
    for row in answer.rows.iter().take(5) {
        println!("  {}", row[0]);
    }
}
