//! Textual query front-end: parse an OQL-style program, optimize it
//! cost-controlled, print the chosen plan, and execute it.
//!
//! Run with a program as the first argument, or without arguments to run
//! the built-in Figure 3 program:
//!
//! ```text
//! cargo run --release --example oql -- '
//!   select [name: c.name] from c in Composer where c.birth_year >= 1700'
//! ```

use std::sync::Arc;

use oorq::cost::{CostModel, CostParams};
use oorq::datagen::{MusicConfig, MusicDb};
use oorq::exec::{Executor, MethodRegistry};
use oorq::index::{IndexSet, PathIndex, SelectionIndex};
use oorq::optimizer::{Optimizer, OptimizerConfig};
use oorq::query::paper::music_catalog;
use oorq::query::parse::parse_query;
use oorq::storage::DbStats;

const DEFAULT_PROGRAM: &str = r#"
-- The paper's Figure 3, as text.
view Influencer as
  select [master: x.master, disciple: x, gen: 1]
  from x in Composer
  where x.master <> null
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer
  where i.disciple = x.master;

select [name: i.disciple.name, gen: i.gen]
from i in Influencer
where i.master.works.instruments.name = "harpsichord" and i.gen >= 3
"#;

fn main() {
    let program = std::env::args()
        .nth(1)
        .unwrap_or_else(|| DEFAULT_PROGRAM.to_string());
    let catalog = Arc::new(music_catalog());

    let query = match parse_query(&catalog, &program) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = query.validate(&catalog) {
        eprintln!("invalid query: {e}");
        std::process::exit(1);
    }
    println!("parsed query graph:\n{}\n", query.display(&catalog));

    let mut music = MusicDb::generate(
        Arc::clone(&catalog),
        MusicConfig {
            chains: 8,
            chain_len: 8,
            harpsichord_fraction: 0.3,
            ..Default::default()
        },
    );
    let mut indexes = IndexSet::new();
    indexes.add_path(PathIndex::build(
        &mut music.db,
        vec![
            (music.composer, music.works_attr),
            (music.composition, music.instruments_attr),
        ],
    ));
    indexes.add_selection(SelectionIndex::build(
        &mut music.db,
        music.composer,
        music.name_attr,
    ));
    let stats = DbStats::collect(&music.db);

    let model = CostModel::new(
        music.db.catalog(),
        music.db.physical(),
        &stats,
        CostParams::default(),
    );
    let plan = match Optimizer::new(model, OptimizerConfig::cost_controlled()).optimize(&query) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot optimize: {e}");
            std::process::exit(1);
        }
    };
    let env = oorq::pt::PtEnv {
        catalog: music.db.catalog(),
        physical: music.db.physical(),
        temp_fields: [("Influencer".to_string(), music.influencer_fields())]
            .into_iter()
            .collect(),
    };
    println!(
        "chosen plan (estimated {:.0}):",
        plan.cost.total(&CostParams::default())
    );
    println!("{}\n", plan.pt.explain(&env));

    let methods = MethodRegistry::with_music_methods(music.db.catalog());
    music.db.cold_cache();
    let mut executor = Executor::new(&mut music.db, &indexes, &methods);
    match executor.run(&plan.pt) {
        Ok(answer) => {
            println!("{} row(s): {}", answer.len(), answer.cols.join(" | "));
            for row in answer.rows.iter().take(20) {
                let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                println!("  {}", cells.join(" | "));
            }
            let r = executor.report();
            println!(
                "\nmeasured: {} page reads, {} index reads, {} evaluations, {} method calls",
                r.io.page_reads, r.io.index_reads, r.evals, r.method_calls
            );
        }
        Err(e) => eprintln!("execution failed: {e}"),
    }
}
