//! Engineering bill-of-materials (the paper's §1 motivation): compute
//! the transitive sub-parts of an assembly — "execute a method for each
//! subpart (recursively) connected to a given part object" — with a
//! recursive `Contains` view and a computed attribute (method) in the
//! final projection.
//!
//! Run with: `cargo run --release --example parts_explosion`

use std::sync::Arc;

use oorq::cost::{CostModel, CostParams};
use oorq::datagen::{parts_catalog, PartsConfig, PartsDb};
use oorq::exec::{eval_query_graph, Executor, MethodRegistry};
use oorq::index::IndexSet;
use oorq::optimizer::{Optimizer, OptimizerConfig};
use oorq::query::{Expr, NameRef, QArc, QueryGraph, SpjNode, ViewRegistry};
use oorq::storage::DbStats;

/// Register the recursive `Contains` view:
///
/// ```text
/// relation Contains
///   includes (select [assembly: p, component: s, depth: 1]
///             from p in Part, s in Part where s in p.subparts)
///   union    (select [assembly: c.assembly, component: s, depth: c.depth+1]
///             from c in Contains, s in Part where s in c.component.subparts)
/// ```
fn contains_view(catalog: &oorq::schema::Catalog) -> ViewRegistry {
    let part = catalog.class_by_name("Part").expect("parts schema");
    let contains = catalog.relation_by_name("Contains").expect("parts schema");
    // Membership is expressed with the existential equality semantics of
    // comparisons over collection-valued paths.
    let base = SpjNode {
        inputs: vec![
            QArc::new(NameRef::Class(part), "p"),
            QArc::new(NameRef::Class(part), "s"),
        ],
        pred: Expr::path("p", &["subparts"]).eq(Expr::var("s")),
        out_proj: vec![
            ("assembly".into(), Expr::var("p")),
            ("component".into(), Expr::var("s")),
            ("depth".into(), Expr::int(1)),
        ],
    };
    let rec = SpjNode {
        inputs: vec![
            QArc::new(NameRef::Relation(contains), "c"),
            QArc::new(NameRef::Class(part), "s"),
        ],
        pred: Expr::path("c", &["component", "subparts"]).eq(Expr::var("s")),
        out_proj: vec![
            ("assembly".into(), Expr::path("c", &["assembly"])),
            ("component".into(), Expr::var("s")),
            (
                "depth".into(),
                Expr::path("c", &["depth"]).add(Expr::int(1)),
            ),
        ],
    };
    let mut reg = ViewRegistry::new();
    reg.define(contains, vec![base, rec]);
    reg
}

fn main() {
    let catalog = Arc::new(parts_catalog());
    let mut parts = PartsDb::generate(
        Arc::clone(&catalog),
        PartsConfig {
            roots: 3,
            fanout: 3,
            depth: 3,
            ..Default::default()
        },
    );
    println!(
        "bill of materials: {} parts in 3 assemblies",
        parts.part_count()
    );

    // "The name and unit test cost of every component of asm0 heavier
    //  than 40 units" — unit_test_cost is a *method* (computed
    //  attribute), so the optimizer must weigh its invocation cost.
    let contains = catalog.relation_by_name("Contains").expect("parts schema");
    let mut query = QueryGraph::new(NameRef::Derived("Answer".into()));
    query.add_spj(
        NameRef::Derived("Answer".into()),
        SpjNode {
            inputs: vec![QArc::new(NameRef::Relation(contains), "k")],
            pred: Expr::path("k", &["assembly", "name"])
                .eq(Expr::text("asm0"))
                .and(Expr::path("k", &["component", "weight"]).ge(Expr::int(40))),
            out_proj: vec![
                ("component".into(), Expr::path("k", &["component", "name"])),
                (
                    "test_cost".into(),
                    Expr::path("k", &["component", "unit_test_cost"]),
                ),
                ("depth".into(), Expr::path("k", &["depth"])),
            ],
        },
    );
    contains_view(&catalog)
        .expand(&mut query, &catalog)
        .expect("view registered");
    println!("\nquery graph:\n{}", query.display(&catalog));

    let stats = DbStats::collect(&parts.db);
    let model = CostModel::new(
        parts.db.catalog(),
        parts.db.physical(),
        &stats,
        CostParams::default(),
    );
    let mut optimizer = Optimizer::new(model, OptimizerConfig::cost_controlled());
    let plan = optimizer.optimize(&query).expect("query optimizes");
    drop(optimizer);
    println!(
        "\nestimated cost: {:.0} io + {:.0} cpu",
        plan.cost.cost.io, plan.cost.cost.cpu
    );

    let methods = MethodRegistry::with_parts_methods(&catalog);
    // Cross-check against the naive reference evaluator.
    let reference = eval_query_graph(&parts.db, &methods, &query).expect("reference evaluates");
    let indexes = IndexSet::new();
    parts.db.cold_cache();
    let mut executor = Executor::new(&mut parts.db, &indexes, &methods);
    let answer = executor.run(&plan.pt).expect("plan executes");
    let report = executor.report();
    assert_eq!(
        answer.len(),
        reference.len(),
        "optimized plan matches the reference"
    );
    println!(
        "\n{} heavy components under asm0 ({} method calls, {} page reads):",
        answer.len(),
        report.method_calls,
        report.io.page_reads
    );
    let mut rows = answer.rows.clone();
    rows.sort();
    for row in rows.iter().take(8) {
        println!("  {} test_cost={} depth={}", row[0], row[1], row[2]);
    }
}
